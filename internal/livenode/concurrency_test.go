package livenode

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"bsub/internal/core"
	"bsub/internal/workload"
)

// TestHubServesFourPeersConcurrently is the acceptance demo for the
// concurrent session engine: one hub completes sessions with four
// distinct peers at the same time (impossible under the seed's single
// TryLock, where the second contact was refused). A barrier inside the
// hub's OnDeliver holds every session open until all four are in flight,
// so the overlap is proven, not scheduled by luck.
func TestHubServesFourPeersConcurrently(t *testing.T) {
	const peers = 4
	clock := newMeshClock(time.Hour)

	release := make(chan struct{})
	var barrierMu sync.Mutex
	arrived := 0
	var sessionsMu sync.Mutex
	var finished []SessionStats

	hub, err := Listen("127.0.0.1:0", Config{
		ID:          1,
		Protocol:    core.DefaultConfig(0.01),
		TTL:         2 * time.Hour,
		Clock:       clock.now,
		MaxSessions: peers,
		OnDeliver: func(Delivery) {
			barrierMu.Lock()
			arrived++
			if arrived == peers {
				close(release)
			}
			barrierMu.Unlock()
			select {
			case <-release:
			case <-time.After(8 * time.Second):
				// Let the session finish; the overlap assertions below
				// will report the failure.
			}
		},
		OnSession: func(st SessionStats) {
			sessionsMu.Lock()
			finished = append(finished, st)
			sessionsMu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })

	mesh := make([]*Node, peers)
	for i := range mesh {
		mesh[i] = startNode(t, uint32(10+i), clock, nil)
		topic := workload.Key(fmt.Sprintf("topic-%d", i))
		hub.Subscribe(topic)
		if _, err := mesh[i].Publish([]byte(fmt.Sprintf("post-%d", i)), topic); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, peers)
	for i := range mesh {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = mesh[i].Meet(hub.Addr())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("peer %d meet: %v", i, err)
		}
	}

	stats := hub.Stats()
	if stats.MaxActive < peers {
		t.Errorf("hub MaxActive = %d, want >= %d concurrent sessions", stats.MaxActive, peers)
	}
	if stats.Completed < peers {
		t.Errorf("hub completed %d sessions, want >= %d", stats.Completed, peers)
	}
	if stats.FramesIn == 0 || stats.FramesOut == 0 || stats.BytesIn == 0 || stats.BytesOut == 0 {
		t.Errorf("hub frame/byte counters empty: %+v", stats)
	}
	if stats.Active != 0 {
		t.Errorf("hub Active = %d after all sessions ended", stats.Active)
	}

	sessionsMu.Lock()
	defer sessionsMu.Unlock()
	distinct := make(map[uint32]struct{})
	for _, st := range finished {
		if st.Outcome != OutcomeCompleted {
			t.Errorf("session with peer %d: outcome %v (phase %v, err %v)",
				st.Peer, st.Outcome, st.Phase, st.Err)
			continue
		}
		if st.Phase != PhaseDone {
			t.Errorf("completed session with peer %d stopped at phase %v", st.Peer, st.Phase)
		}
		if st.Initiator {
			t.Errorf("hub recorded an initiator session it never dialed (peer %d)", st.Peer)
		}
		if st.FramesIn == 0 || st.BytesOut == 0 {
			t.Errorf("session with peer %d has empty transfer counters: %+v", st.Peer, st)
		}
		distinct[st.Peer] = struct{}{}
	}
	if len(distinct) < peers {
		t.Errorf("hub completed sessions with %d distinct peers, want %d", len(distinct), peers)
	}
}

// occupy opens a raw TCP connection that pins one of addr's session
// slots: the responder accepts, acquires a slot, and blocks reading the
// HELLO that never comes. Close the returned conn to free the slot.
// occupy pins one of the node's session slots: it dials, sends a valid
// HELLO, and then stalls mid-session. A silent connect is not enough — a
// slot is taken when the first frame arrives, not at TCP connect, so idle
// connections cannot starve contacts.
func occupy(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frameHello, hello{ID: 4242}.encode()); err != nil {
		t.Fatal(err)
	}
	return conn
}

// waitActive polls until the node reports want active sessions.
func waitActive(t *testing.T, n *Node, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n.Stats().Active == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("node never reached %d active sessions (now %d)", want, n.Stats().Active)
}

func TestBusyFrameRefusalAndMeetRetry(t *testing.T) {
	clock := newMeshClock(time.Hour)
	hub, err := Listen("127.0.0.1:0", Config{
		ID:          1,
		Protocol:    core.DefaultConfig(0.01),
		TTL:         time.Hour,
		Clock:       clock.now,
		MaxSessions: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = hub.Close() })

	// Pin the hub's only slot, then dial with retries disabled: the hub
	// must answer an explicit BUSY frame, surfaced as ErrPeerBusy.
	blocker := occupy(t, hub.Addr())
	waitActive(t, hub, 1)

	oneShot, err := Listen("127.0.0.1:0", Config{
		ID:           2,
		Protocol:     core.DefaultConfig(0.01),
		TTL:          time.Hour,
		Clock:        clock.now,
		MeetAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = oneShot.Close() })
	if err := oneShot.Meet(hub.Addr()); !errors.Is(err, ErrPeerBusy) {
		t.Fatalf("meet against a full hub: err = %v, want ErrPeerBusy", err)
	}
	if got := hub.Stats().RefusedBusy; got != 1 {
		t.Errorf("hub RefusedBusy = %d, want 1", got)
	}
	if got := oneShot.Stats().PeerBusy; got != 1 {
		t.Errorf("dialer PeerBusy = %d, want 1", got)
	}

	// With retries enabled, Meet must ride out the busy window: free the
	// slot mid-backoff and the retry succeeds.
	patient, err := Listen("127.0.0.1:0", Config{
		ID:           3,
		Protocol:     core.DefaultConfig(0.01),
		TTL:          time.Hour,
		Clock:        clock.now,
		MeetAttempts: 20,
		MeetBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = patient.Close() })
	go func() {
		time.Sleep(20 * time.Millisecond)
		_ = blocker.Close()
	}()
	if err := patient.Meet(hub.Addr()); err != nil {
		t.Fatalf("meet with retries: %v", err)
	}
	stats := patient.Stats()
	if stats.Completed != 1 {
		t.Errorf("patient Completed = %d, want 1", stats.Completed)
	}
	if stats.PeerBusy == 0 {
		t.Error("patient never saw a BUSY answer; the retry path was not exercised")
	}
}

func TestMeetRefusesAtLocalCapacity(t *testing.T) {
	clock := newMeshClock(time.Hour)
	peer := startNode(t, 2, clock, nil)
	n, err := Listen("127.0.0.1:0", Config{
		ID:           1,
		Protocol:     core.DefaultConfig(0.01),
		TTL:          time.Hour,
		Clock:        clock.now,
		MeetAttempts: 2,
		MeetBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })

	// Fill every local slot; Meet must refuse without dialing.
	for i := 0; i < cap(n.sessions); i++ {
		n.sessions <- struct{}{}
	}
	if err := n.Meet(peer.Addr()); !errors.Is(err, ErrBusy) {
		t.Fatalf("meet at local capacity: err = %v, want ErrBusy", err)
	}
	if got := n.Stats().RefusedBusy; got != 2 {
		t.Errorf("RefusedBusy = %d, want one per attempt (2)", got)
	}
	for i := 0; i < cap(n.sessions); i++ {
		<-n.sessions
	}
	if err := n.Meet(peer.Addr()); err != nil {
		t.Fatalf("meet after slots freed: %v", err)
	}
}

// TestConcurrentSubscribePublishClose hammers the public API from many
// goroutines while sessions run, then races several Close calls. The
// race detector is the real assertion; the seed's double-close panicked
// here.
func TestConcurrentSubscribePublishClose(t *testing.T) {
	clock := newMeshClock(time.Hour)
	a := startNode(t, 1, clock, nil)
	b := startNode(t, 2, clock, nil)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				a.Subscribe(workload.Key(fmt.Sprintf("k-%d-%d", g, i)))
				if _, err := a.Publish([]byte("x"), workload.Key(fmt.Sprintf("p-%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
				_ = a.Interests()
				_ = a.IsBroker()
				_ = a.CarriedCount()
				_ = a.Stats()
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				// Busy refusals are fine under contention; wedging is not.
				_ = a.Meet(b.Addr())
				_ = b.Meet(a.Addr())
			}
		}()
	}
	wg.Wait()

	// Concurrent Close calls: the seed's select/default check let two
	// goroutines both close(n.closed) and panic.
	var closers sync.WaitGroup
	for g := 0; g < 8; g++ {
		closers.Add(1)
		go func() {
			defer closers.Done()
			if err := a.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	closers.Wait()
	if err := a.Close(); err != nil {
		t.Errorf("close after concurrent closes: %v", err)
	}
}

func TestNextAcceptDelayBacksOff(t *testing.T) {
	want := []time.Duration{
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond,
		40 * time.Millisecond, 80 * time.Millisecond, 160 * time.Millisecond,
		320 * time.Millisecond, 640 * time.Millisecond, time.Second, time.Second,
	}
	var d time.Duration
	for i, w := range want {
		d = nextAcceptDelay(d)
		if d != w {
			t.Fatalf("step %d: delay = %v, want %v", i, d, w)
		}
	}
}

func TestPhaseAndOutcomeStrings(t *testing.T) {
	phases := []SessionPhase{PhaseConnect, PhaseHello, PhaseElection, PhaseGenuine, PhaseRelay, PhasePull, PhaseDone}
	for _, p := range phases {
		if p.String() == "unknown" {
			t.Errorf("phase %d has no name", p)
		}
	}
	if SessionPhase(200).String() != "unknown" {
		t.Error("out-of-range phase not reported unknown")
	}
	outcomes := []SessionOutcome{OutcomeCompleted, OutcomeError, OutcomePeerBusy, OutcomeRefusedBusy, OutcomeDialError}
	for _, o := range outcomes {
		if o.String() == "unknown" {
			t.Errorf("outcome %d has no name", o)
		}
	}
	if SessionOutcome(200).String() != "unknown" {
		t.Error("out-of-range outcome not reported unknown")
	}
}

// TestDialFailureCountsAndRetries: a dial against a dead address is
// retried MeetAttempts times and accounted as DialErrors.
func TestDialFailureCountsAndRetries(t *testing.T) {
	clock := newMeshClock(time.Hour)
	// Grab an address that is certainly unbound.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	n, err := Listen("127.0.0.1:0", Config{
		ID:           1,
		Protocol:     core.DefaultConfig(0.01),
		TTL:          time.Hour,
		Clock:        clock.now,
		MeetAttempts: 3,
		MeetBackoff:  time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = n.Close() })
	if err := n.Meet(dead); err == nil {
		t.Fatal("meeting a dead address succeeded")
	}
	if got := n.Stats().DialErrors; got != 3 {
		t.Errorf("DialErrors = %d, want one per attempt (3)", got)
	}
	if got := n.Stats().Started; got != 0 {
		t.Errorf("Started = %d after pure dial failures, want 0", got)
	}
}
