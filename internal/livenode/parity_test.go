package livenode

import (
	"math/rand"
	"net"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"bsub/internal/core"
	"bsub/internal/filter"
	"bsub/internal/sim"
	"bsub/internal/tcbf"
	"bsub/internal/trace"
	"bsub/internal/workload"
)

// parityEnv is a minimal sim.Env for driving the core adapter outside the
// discrete-event runner: shared clock, fixed interests, metrics discarded.
type parityEnv struct {
	clock     *meshClock
	interests [][]workload.Key
	ttl       time.Duration
}

func (e *parityEnv) Now() time.Duration                        { return e.clock.now() }
func (e *parityEnv) Worker() int                               { return 0 }
func (e *parityEnv) Workers() int                              { return 1 }
func (e *parityEnv) RNG() *rand.Rand                           { return rand.New(rand.NewSource(1)) }
func (e *parityEnv) Nodes() int                                { return len(e.interests) }
func (e *parityEnv) Interest(n trace.NodeID) workload.Key      { return e.interests[n][0] }
func (e *parityEnv) InterestSet(n trace.NodeID) []workload.Key { return e.interests[n] }
func (e *parityEnv) TTL() time.Duration                        { return e.ttl }
func (e *parityEnv) Deliver(*workload.Message, trace.NodeID)   {}
func (e *parityEnv) RecordForwarding(*workload.Message)        {}
func (e *parityEnv) RecordReplication(bool)                    {}
func (e *parityEnv) RecordControl(int)                         {}

// engineSnapshot is the protocol-visible state of one node: everything a
// forwarding or election decision can depend on.
type engineSnapshot struct {
	Broker    bool
	Relay     []byte // CountersFull encoding; nil for users
	Carried   []int
	Produced  []int
	Copies    map[int]int
	Delivered []int
}

func canonInts(ids []int) []int {
	if len(ids) == 0 {
		return []int{}
	}
	sort.Ints(ids)
	return ids
}

// liveContact runs one full contact session between two live nodes over
// an in-process pipe, the dialer as initiator.
func liveContact(t *testing.T, dialer, responder *Node) {
	t.Helper()
	ca, cb := net.Pipe()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = dialer.runContact(ca, true); ca.Close() }()
	go func() { defer wg.Done(); errs[1] = responder.runContact(cb, false); cb.Close() }()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("live contact side %d: %v", i, err)
		}
	}
}

// TestSimLiveParity replays one deterministic contact sequence twice —
// once through the simulator adapter (direct engine session calls), once
// through pairs of in-process live nodes framing the same sessions over
// net.Pipe — and asserts the protocol state is identical after every
// contact: broker elections, relay-filter contents (to the byte),
// forwarding decisions (visible as carried/produced/delivered sets and
// copy budgets). Both adapters drive the same engine, so any divergence
// is an adapter reordering or re-implementing protocol logic.
func TestSimLiveParity(t *testing.T) {
	const n = 4
	cfg := core.DefaultConfig(0.01)
	interests := [][]workload.Key{
		0: {"alpha"},
		1: {"news"},
		2: {"gamma"},
		3: {"beta"},
	}
	clock := newMeshClock(time.Hour)
	ttl := 6 * time.Hour

	// Simulator side.
	simSide := core.New(cfg)
	env := &parityEnv{clock: clock, interests: interests[:], ttl: ttl}
	if err := simSide.Init(env, nil); err != nil {
		t.Fatal(err)
	}

	// Live side: node IDs are the sim node indices.
	live := make([]*Node, n)
	for i := range live {
		node, err := Listen("127.0.0.1:0", Config{
			ID:       uint32(i),
			Protocol: cfg,
			TTL:      ttl,
			Clock:    clock.now,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		node.Subscribe(interests[i]...)
		live[i] = node
	}

	simSnap := func(i int) engineSnapshot {
		return snapshotEngine(t, simSide, live[i], true)
	}
	liveSnap := func(i int) engineSnapshot {
		return snapshotEngine(t, simSide, live[i], false)
	}

	// One deterministic script: elections with the mutual-promotion
	// tie-break, genuine propagation with A-merge reinforcement,
	// replication, a broker-broker relay exchange with preferential
	// forwarding, carried delivery, and duplicate suppression.
	type step struct {
		contact [2]int // contact[0] dials
		publish int    // publisher index when key != ""
		key     workload.Key
		advance time.Duration
		check   func()
	}
	script := []step{
		{contact: [2]int{1, 2}}, // mutual promote -> 2 is broker
		{contact: [2]int{0, 3}}, // mutual promote -> 3 is broker
		{advance: 5 * time.Minute},
		{contact: [2]int{1, 3}}, // genuine "news" -> 3's relay
		{advance: 5 * time.Minute},
		{contact: [2]int{1, 3}}, // A-merge reinforcement at 3
		{publish: 0, key: "news"},
		{advance: 5 * time.Minute},
		{contact: [2]int{0, 2}}, // replication: 2 pulls a copy
		{advance: 5 * time.Minute},
		{contact: [2]int{2, 3}}, // broker-broker: forward 2 -> 3
		{check: func() {
			// Preferential forwarding must have moved the copy toward the
			// reinforced broker; otherwise the script isn't testing it.
			if live[2].CarriedCount() != 0 || live[3].CarriedCount() != 1 {
				t.Fatalf("forwarding did not move the copy: carried 2=%d 3=%d",
					live[2].CarriedCount(), live[3].CarriedCount())
			}
		}},
		{advance: 5 * time.Minute},
		{contact: [2]int{1, 3}}, // carried delivery to 1
		{contact: [2]int{0, 1}}, // direct pull deduped at 1
	}
	for si, st := range script {
		switch {
		case st.check != nil:
			st.check()
			continue
		case st.advance != 0:
			clock.advance(st.advance)
			continue
		case st.key != "":
			payload := []byte("parity payload")
			id, err := live[st.publish].Publish(payload, st.key)
			if err != nil {
				t.Fatal(err)
			}
			simSide.OnMessage(env, workload.Message{
				ID:        id,
				Key:       st.key,
				Origin:    st.publish,
				Size:      len(payload),
				CreatedAt: clock.now(),
			})
			continue
		}
		a, b := st.contact[0], st.contact[1]
		simSide.OnContact(env, trace.NodeID(a), trace.NodeID(b), sim.NewBudget(1<<30))
		liveContact(t, live[a], live[b])
		for i := 0; i < n; i++ {
			simS, liveS := simSnap(i), liveSnap(i)
			if !reflect.DeepEqual(simS, liveS) {
				t.Fatalf("step %d (contact %d-%d): node %d diverged\nsim:  %+v\nlive: %+v",
					si, a, b, i, simS, liveS)
			}
		}
	}

	// The script must actually have exercised the interesting machinery.
	if !simSide.IsBroker(2) || !simSide.IsBroker(3) {
		t.Error("script no longer promotes nodes 2 and 3")
	}
	finalDelivered := liveSnapDelivered(live[1])
	if len(finalDelivered) != 1 {
		t.Errorf("consumer 1 delivered set = %v, want exactly the published message", finalDelivered)
	}
}

func liveSnapDelivered(n *Node) []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return canonInts(n.eng.DeliveredIDs())
}

// snapshotEngine extracts the comparable state for one node from either
// adapter. fromSim selects the simulator side; the live node argument
// identifies which node index to read on either side.
func snapshotEngine(t *testing.T, simSide *core.BSub, liveNode *Node, fromSim bool) engineSnapshot {
	t.Helper()
	var snap engineSnapshot
	var relay filter.Filter
	if fromSim {
		id := trace.NodeID(liveNode.cfg.ID)
		snap.Broker = simSide.IsBroker(id)
		relay = simSide.RelayFilter(id)
		eng := simSide.Engine(id)
		snap.Carried = canonInts(eng.CarriedIDs())
		snap.Produced = canonInts(eng.ProducedIDs())
		snap.Delivered = canonInts(eng.DeliveredIDs())
		snap.Copies = make(map[int]int, len(snap.Produced))
		for _, id := range snap.Produced {
			snap.Copies[id] = eng.ProducedCopies(id)
		}
	} else {
		liveNode.mu.Lock()
		defer liveNode.mu.Unlock()
		eng := liveNode.eng
		snap.Broker = eng.IsBroker()
		relay = eng.Relay()
		snap.Carried = canonInts(eng.CarriedIDs())
		snap.Produced = canonInts(eng.ProducedIDs())
		snap.Delivered = canonInts(eng.DeliveredIDs())
		snap.Copies = make(map[int]int, len(snap.Produced))
		for _, id := range snap.Produced {
			snap.Copies[id] = eng.ProducedCopies(id)
		}
	}
	if relay != nil {
		enc, err := relay.Encode(tcbf.CountersFull)
		if err != nil {
			t.Fatal(err)
		}
		snap.Relay = enc
	}
	return snap
}
