package livenode

import "time"

// SessionPhase marks how deep into the contact protocol a session got
// before it ended. Phases advance monotonically; a SessionStats record
// carries the deepest phase the session completed.
type SessionPhase uint8

const (
	// PhaseConnect: a TCP connection existed (or a dial was attempted)
	// but no protocol frame was exchanged yet.
	PhaseConnect SessionPhase = iota
	// PhaseHello: the HELLO exchange completed and the peer is known.
	PhaseHello
	// PhaseElection: the broker election step completed.
	PhaseElection
	// PhaseGenuine: genuine (interest) filters were exchanged.
	PhaseGenuine
	// PhaseRelay: the broker-to-broker relay exchange completed.
	PhaseRelay
	// PhasePull: the interest-BF pull rounds completed.
	PhasePull
	// PhaseDone: the BYE exchange completed; the session is whole.
	PhaseDone
)

func (p SessionPhase) String() string {
	switch p {
	case PhaseConnect:
		return "connect"
	case PhaseHello:
		return "hello"
	case PhaseElection:
		return "election"
	case PhaseGenuine:
		return "genuine"
	case PhaseRelay:
		return "relay"
	case PhasePull:
		return "pull"
	case PhaseDone:
		return "done"
	}
	return "unknown"
}

// SessionOutcome classifies how a contact attempt ended.
type SessionOutcome uint8

const (
	// OutcomeCompleted: the full session ran through BYE.
	OutcomeCompleted SessionOutcome = iota
	// OutcomeError: the session died mid-protocol (I/O or protocol error).
	OutcomeError
	// OutcomePeerBusy: the remote node answered BUSY; retryable.
	OutcomePeerBusy
	// OutcomeRefusedBusy: this node was at MaxSessions capacity and
	// refused the contact (inbound: BUSY frame sent; outgoing: Meet
	// found no free slot).
	OutcomeRefusedBusy
	// OutcomeDialError: the dial failed before any session ran.
	OutcomeDialError
	// OutcomeTimedOut: a frame read or write hit its SessionTimeout
	// deadline — the peer stalled mid-contact.
	OutcomeTimedOut
	// OutcomeSevered: the connection died mid-protocol (EOF, reset,
	// closed pipe) — the contact ended without warning.
	OutcomeSevered
	// OutcomeCorrupt: a frame failed its CRC check — the link flipped
	// bits in flight.
	OutcomeCorrupt
)

func (o SessionOutcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeError:
		return "error"
	case OutcomePeerBusy:
		return "peer-busy"
	case OutcomeRefusedBusy:
		return "refused-busy"
	case OutcomeDialError:
		return "dial-error"
	case OutcomeTimedOut:
		return "timed-out"
	case OutcomeSevered:
		return "severed"
	case OutcomeCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// SessionStats records one contact attempt: who, which side initiated,
// how far the protocol got, how much traveled, and how it ended. Every
// attempt — including contacts refused at capacity and failed dials —
// produces exactly one record, surfaced through Config.OnSession and
// aggregated into the node's Counters.
type SessionStats struct {
	// Peer is the remote node's ID, or 0 when the session ended before
	// the HELLO identified it.
	Peer uint32
	// Initiator reports whether this node dialed the contact.
	Initiator bool
	// Phase is the deepest protocol phase the session completed.
	Phase SessionPhase
	// Outcome classifies the ending.
	Outcome SessionOutcome
	// FramesIn / FramesOut count protocol frames received / sent.
	FramesIn, FramesOut int
	// BytesIn / BytesOut count wire bytes (headers + bodies).
	BytesIn, BytesOut int64
	// MsgsRefunded counts message copies that were claimed and sent but
	// never ACKed before the session ended; each was refunded to its
	// store, preserving copy-count conservation.
	MsgsRefunded int
	// Duration is wall-clock session time (not mesh-clock time).
	Duration time.Duration
	// Err is the terminal error, nil on success.
	Err error
}

// Counters is a point-in-time snapshot of a node's session activity,
// the live-path counterpart of the simulator's internal/metrics.
type Counters struct {
	// Started counts sessions that acquired a slot and began the
	// protocol, in either direction.
	Started uint64
	// Completed / Failed / PeerBusy partition finished sessions by
	// outcome.
	Completed uint64
	Failed    uint64
	PeerBusy  uint64
	// RefusedBusy counts contacts refused because this node was at
	// MaxSessions capacity (inbound BUSY answers and Meet calls that
	// found no free local slot).
	RefusedBusy uint64
	// DialErrors counts Meet dial attempts that never connected.
	DialErrors uint64
	// TimedOut / Severed / Corrupt partition failed sessions by failure
	// mode: a frame deadline hit, a connection that died mid-protocol,
	// and a frame that failed its CRC check.
	TimedOut uint64
	Severed  uint64
	Corrupt  uint64
	// MsgsRefunded counts message copies claimed for a transfer that was
	// never ACKed and therefore refunded to their stores.
	MsgsRefunded uint64
	// MeetRetries counts reconnect attempts: Meet calls that slept a
	// jittered backoff and tried the contact again after a failure.
	MeetRetries uint64
	// GossipSent / GossipAnswered count membership datagrams exchanged
	// outside contact sessions: outbound exchanges that completed, and
	// inbound gossip frames answered through Config.GossipHandler.
	GossipSent     uint64
	GossipAnswered uint64
	// Frame and byte totals across all finished sessions.
	FramesIn, FramesOut uint64
	BytesIn, BytesOut   uint64
	// Active is the number of sessions running right now; MaxActive is
	// the concurrency high-water mark over the node's lifetime.
	Active    int
	MaxActive int
}

// Stats returns a snapshot of the node's session counters.
func (n *Node) Stats() Counters {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	return n.counters
}

// meetRetried accounts one reconnect attempt (a Meet retry after backoff).
func (n *Node) meetRetried() {
	n.statsMu.Lock()
	n.counters.MeetRetries++
	n.statsMu.Unlock()
}

// gossipSent accounts one completed outbound gossip exchange.
func (n *Node) gossipSent() {
	n.statsMu.Lock()
	n.counters.GossipSent++
	n.statsMu.Unlock()
}

// gossipAnswered accounts one inbound gossip frame served.
func (n *Node) gossipAnswered() {
	n.statsMu.Lock()
	n.counters.GossipAnswered++
	n.statsMu.Unlock()
}

// sessionStarted accounts a session that acquired a slot and is about to
// run the protocol.
func (n *Node) sessionStarted() {
	n.statsMu.Lock()
	defer n.statsMu.Unlock()
	n.counters.Started++
	n.counters.Active++
	if n.counters.Active > n.counters.MaxActive {
		n.counters.MaxActive = n.counters.Active
	}
}

// sessionEnded folds a finished attempt into the counters and fires the
// OnSession hook. ranProtocol distinguishes sessions accounted by
// sessionStarted from attempts (refusals, failed dials) that never held
// a slot.
func (n *Node) sessionEnded(st SessionStats, ranProtocol bool) {
	n.statsMu.Lock()
	if ranProtocol {
		n.counters.Active--
	}
	switch st.Outcome {
	case OutcomeCompleted:
		n.counters.Completed++
	case OutcomePeerBusy:
		n.counters.PeerBusy++
	case OutcomeRefusedBusy:
		n.counters.RefusedBusy++
	case OutcomeDialError:
		n.counters.DialErrors++
	case OutcomeTimedOut:
		n.counters.Failed++
		n.counters.TimedOut++
	case OutcomeSevered:
		n.counters.Failed++
		n.counters.Severed++
	case OutcomeCorrupt:
		n.counters.Failed++
		n.counters.Corrupt++
	default:
		n.counters.Failed++
	}
	n.counters.MsgsRefunded += uint64(st.MsgsRefunded)
	n.counters.FramesIn += uint64(st.FramesIn)
	n.counters.FramesOut += uint64(st.FramesOut)
	n.counters.BytesIn += uint64(st.BytesIn)
	n.counters.BytesOut += uint64(st.BytesOut)
	n.statsMu.Unlock()
	// The hook runs outside statsMu so a slow observer cannot stall the
	// counters of concurrent sessions.
	if n.cfg.OnSession != nil {
		n.cfg.OnSession(st)
	}
}
