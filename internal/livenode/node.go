package livenode

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"bsub/internal/core"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// Delivery is a message that reached this node's subscriptions.
type Delivery struct {
	Message workload.Message
	Payload []byte
	// Direct reports whether the message arrived straight from its
	// producer (true) or through a broker (false).
	Direct bool
}

// Defaults for the session-engine knobs; selected when the corresponding
// Config field is zero.
const (
	// DefaultMaxSessions bounds concurrent contact sessions per node.
	DefaultMaxSessions = 8
	// DefaultMeetAttempts bounds Meet's retries on BUSY or dial failure.
	DefaultMeetAttempts = 3
	// DefaultMeetBackoff is the pause before Meet's first retry; it
	// doubles after every failed attempt.
	DefaultMeetBackoff = 25 * time.Millisecond
	// DefaultSessionTimeout bounds each single frame read or write in a
	// contact session; HUNET contacts are short, and a hung peer must
	// not pin a session slot forever.
	DefaultSessionTimeout = 10 * time.Second
	// DefaultDialTimeout bounds Meet's TCP connect.
	DefaultDialTimeout = 5 * time.Second
)

// Config parameterizes a live node. The protocol parameters reuse
// core.Config (the paper's Section V/VII values via core.DefaultConfig).
type Config struct {
	// ID must be unique across the mesh.
	ID uint32
	// Protocol holds the B-SUB parameters.
	Protocol core.Config
	// TTL is the message lifetime.
	TTL time.Duration
	// Clock returns the current time as an offset on a basis shared by
	// all nodes in the mesh (defaults to Unix wall time). Injected for
	// tests.
	Clock func() time.Duration
	// OnDeliver, when set, receives each delivered message exactly once.
	// It is called from session goroutines with no node locks held; a
	// slow implementation stalls only its own session.
	OnDeliver func(Delivery)
	// MaxSessions bounds how many contact sessions (inbound plus
	// outgoing) run concurrently; further inbound contacts are answered
	// with a BUSY frame and further Meet calls return ErrBusy. Zero or
	// negative selects DefaultMaxSessions.
	MaxSessions int
	// MeetAttempts bounds how many times one Meet call tries the
	// contact when the dial fails or either side is at capacity. Zero
	// or negative selects DefaultMeetAttempts.
	MeetAttempts int
	// MeetBackoff is the pause before Meet's first retry, doubled after
	// each failed attempt. Zero or negative selects DefaultMeetBackoff.
	MeetBackoff time.Duration
	// SessionTimeout bounds each single frame read or write inside a
	// contact session. The deadline is re-armed before every frame, so a
	// healthy transfer may run arbitrarily long while a stalled peer is
	// detected within one timeout. Zero or negative selects
	// DefaultSessionTimeout.
	SessionTimeout time.Duration
	// DialTimeout bounds Meet's TCP connect. Zero or negative selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// OnSession, when set, receives one SessionStats record per contact
	// attempt — completed, failed mid-protocol, refused at capacity, or
	// never connected. Called from session goroutines with no node
	// locks held.
	OnSession func(SessionStats)
}

type storedMessage struct {
	msg       workload.Message
	payload   []byte
	expiresAt time.Duration
	copies    int
	sent      map[uint32]struct{} // peers this copy was directly served to
}

// Node is one live B-SUB device. Create with Listen, connect contacts with
// Meet, publish with Publish, and stop with Close.
//
// Protocol state is split into three independently locked regions so
// sessions with distinct peers run in parallel; no lock is ever held
// across network I/O. Lock order (when nesting is unavoidable): none —
// the code acquires at most one region lock at a time.
type Node struct {
	cfg       Config
	filterCfg tcbf.Config

	listener  net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error

	// sessions is the MaxSessions semaphore; every running session (in
	// either direction) holds one slot.
	sessions chan struct{}

	// subMu guards the subscription list.
	subMu     sync.RWMutex
	interests []workload.Key

	// storeMu guards the message stores and the publish sequence.
	storeMu   sync.Mutex
	produced  map[int]*storedMessage
	carried   map[int]*storedMessage
	delivered map[int]struct{}
	nextSeq   uint32

	// roleMu guards broker role, the shared relay filter, and the
	// meeting/sighting bookkeeping the election reads.
	roleMu    sync.Mutex
	broker    bool
	relay     *tcbf.Filter
	meetings  map[uint32]time.Duration
	sightings map[uint32]brokerSighting

	// statsMu guards the session counters (see stats.go).
	statsMu  sync.Mutex
	counters Counters
}

type brokerSighting struct {
	at     time.Duration
	degree int
}

// Listen starts a node serving contact sessions on addr (e.g.
// "127.0.0.1:0").
func Listen(addr string, cfg Config) (*Node, error) {
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("livenode: TTL must be positive, got %v", cfg.TTL)
	}
	if err := validateProtocol(cfg.Protocol); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		epoch := time.Unix(0, 0)
		cfg.Clock = func() time.Duration { return time.Since(epoch) }
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MeetAttempts <= 0 {
		cfg.MeetAttempts = DefaultMeetAttempts
	}
	if cfg.MeetBackoff <= 0 {
		cfg.MeetBackoff = DefaultMeetBackoff
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = DefaultSessionTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenode: listen: %w", err)
	}
	n := &Node{
		cfg: cfg,
		filterCfg: tcbf.Config{
			M:              cfg.Protocol.FilterM,
			K:              cfg.Protocol.FilterK,
			Initial:        cfg.Protocol.InitialCounter,
			DecayPerMinute: cfg.Protocol.DecayPerMinute,
		},
		listener:  ln,
		closed:    make(chan struct{}),
		sessions:  make(chan struct{}, cfg.MaxSessions),
		produced:  make(map[int]*storedMessage),
		carried:   make(map[int]*storedMessage),
		delivered: make(map[int]struct{}),
		meetings:  make(map[uint32]time.Duration),
		sightings: make(map[uint32]brokerSighting),
	}
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// validateProtocol re-checks the core parameters livenode depends on
// (core validates them on Init inside the simulator; here there is no
// simulator).
func validateProtocol(c core.Config) error {
	switch {
	case c.FilterM <= 0 || c.FilterK <= 0:
		return fmt.Errorf("livenode: filter geometry (%d,%d) invalid", c.FilterM, c.FilterK)
	case c.InitialCounter <= 0:
		return fmt.Errorf("livenode: initial counter must be positive, got %g", c.InitialCounter)
	case c.DecayPerMinute < 0:
		return fmt.Errorf("livenode: decay factor must be non-negative, got %g", c.DecayPerMinute)
	case c.CopyLimit < 1:
		return fmt.Errorf("livenode: copy limit must be at least 1, got %d", c.CopyLimit)
	case c.BrokerLow < 0 || c.BrokerHigh < c.BrokerLow:
		return fmt.Errorf("livenode: broker thresholds (%d,%d) invalid", c.BrokerLow, c.BrokerHigh)
	case c.Window <= 0:
		return fmt.Errorf("livenode: window must be positive, got %v", c.Window)
	case c.RelayPartitions > 1:
		return fmt.Errorf("livenode: partitioned relay filters (%d) are not supported by the prototype", c.RelayPartitions)
	}
	return nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// ID returns the node's mesh-unique identifier.
func (n *Node) ID() uint32 { return n.cfg.ID }

// Close stops the listener and waits for in-flight sessions. It is safe
// to call concurrently and repeatedly; every call waits for shutdown to
// finish and returns the listener's close error.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.closeErr = n.listener.Close()
	})
	n.wg.Wait()
	return n.closeErr
}

// Subscribe adds interest keys. In B-SUB terms, they enter the node's
// genuine filter and will be pushed to brokers on future contacts.
func (n *Node) Subscribe(keys ...workload.Key) {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	for _, k := range keys {
		dup := false
		for _, have := range n.interests {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			n.interests = append(n.interests, k)
		}
	}
}

// Interests returns a copy of the node's subscriptions.
func (n *Node) Interests() []workload.Key {
	n.subMu.RLock()
	defer n.subMu.RUnlock()
	return append([]workload.Key(nil), n.interests...)
}

// Publish stores a message for dissemination and returns its mesh-wide ID.
// keys[0] is the primary content key; extras follow (multi-key extension).
func (n *Node) Publish(payload []byte, keys ...workload.Key) (int, error) {
	if len(keys) == 0 {
		return 0, errors.New("livenode: publish requires at least one key")
	}
	if len(payload) > workload.MaxMessageBytes {
		return 0, fmt.Errorf("livenode: payload %d bytes exceeds the %d-byte cap",
			len(payload), workload.MaxMessageBytes)
	}
	now := n.cfg.Clock()
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	id := int(uint64(n.cfg.ID)<<32 | uint64(n.nextSeq))
	n.nextSeq++
	msg := workload.Message{
		ID:        id,
		Key:       keys[0],
		Origin:    int(n.cfg.ID),
		Size:      len(payload),
		CreatedAt: now,
	}
	if len(keys) > 1 {
		msg.Extra = append([]workload.Key(nil), keys[1:]...)
	}
	n.produced[id] = &storedMessage{
		msg:       msg,
		payload:   append([]byte(nil), payload...),
		expiresAt: now + n.cfg.TTL,
		copies:    n.cfg.Protocol.CopyLimit,
	}
	return id, nil
}

// IsBroker reports whether the node currently serves as a broker.
func (n *Node) IsBroker() bool {
	n.roleMu.Lock()
	defer n.roleMu.Unlock()
	return n.broker
}

// CarriedCount returns how many relayed copies the node holds.
func (n *Node) CarriedCount() int {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	return len(n.carried)
}

// serve accepts inbound contact sessions until Close. Persistent accept
// errors (EMFILE and friends) back off net/http-style instead of
// busy-spinning the loop at 100% CPU.
func (n *Node) serve() {
	defer n.wg.Done()
	var delay time.Duration
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			delay = nextAcceptDelay(delay)
			timer := time.NewTimer(delay)
			select {
			case <-n.closed:
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		delay = 0
		n.wg.Add(1)
		go n.handleInbound(conn)
	}
}

// nextAcceptDelay doubles the accept-retry pause from 5ms up to 1s.
func nextAcceptDelay(prev time.Duration) time.Duration {
	if prev == 0 {
		return 5 * time.Millisecond
	}
	if prev >= time.Second/2 {
		return time.Second
	}
	return prev * 2
}

// handleInbound runs one accepted contact. At capacity the node answers
// a single BUSY frame — an explicit, retryable refusal — instead of
// slamming the connection.
func (n *Node) handleInbound(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	select {
	case n.sessions <- struct{}{}:
	default:
		_ = writeFrame(conn, frameBusy, nil)
		n.sessionEnded(SessionStats{
			Phase:   PhaseConnect,
			Outcome: OutcomeRefusedBusy,
			Err:     ErrBusy,
		}, false)
		// Drain the dialer's HELLO before closing: closing with unread
		// inbound data resets the connection, which can destroy the BUSY
		// frame before the peer reads it.
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		_, _ = io.Copy(io.Discard, conn)
		return
	}
	defer func() { <-n.sessions }()
	_ = n.runContact(conn, false)
}

// maxMeetBackoff caps Meet's exponential retry backoff; without a cap a
// generous MeetAttempts turns the doubling into hours-long sleeps.
const maxMeetBackoff = time.Second

// ErrBusy is returned by Meet when this node is already running
// MaxSessions contact sessions; the caller may retry, as a device whose
// radio is occupied.
var ErrBusy = errors.New("livenode: node at session capacity")

// ErrPeerBusy is returned by Meet when the remote node answered BUSY
// instead of joining the session; the caller may retry.
var ErrPeerBusy = errors.New("livenode: peer at session capacity")

// Meet dials a peer and runs one contact session, mirroring two devices
// coming into Bluetooth range. Transient failures — a failed dial, this
// node at capacity, or the peer answering BUSY — are retried up to
// Config.MeetAttempts times with exponential backoff; the last error is
// returned if every attempt fails. Protocol errors mid-session are not
// retried.
func (n *Node) Meet(addr string) error {
	backoff := n.cfg.MeetBackoff
	var err error
	for attempt := 0; attempt < n.cfg.MeetAttempts; attempt++ {
		if attempt > 0 {
			timer := time.NewTimer(backoff)
			select {
			case <-n.closed:
				timer.Stop()
				return err
			case <-timer.C:
			}
			if backoff < maxMeetBackoff {
				backoff *= 2
			}
		}
		var retry bool
		retry, err = n.meetOnce(addr)
		if err == nil || !retry {
			return err
		}
	}
	return err
}

// meetOnce makes a single contact attempt. The session slot is reserved
// with a non-blocking acquire and no node lock is held across the dial,
// so a slow or failing dial never starves inbound contacts.
func (n *Node) meetOnce(addr string) (retry bool, err error) {
	select {
	case n.sessions <- struct{}{}:
	default:
		n.sessionEnded(SessionStats{
			Initiator: true,
			Phase:     PhaseConnect,
			Outcome:   OutcomeRefusedBusy,
			Err:       ErrBusy,
		}, false)
		return true, ErrBusy
	}
	defer func() { <-n.sessions }()
	conn, err := net.DialTimeout("tcp", addr, n.cfg.DialTimeout)
	if err != nil {
		err = fmt.Errorf("livenode: dial %s: %w", addr, err)
		n.sessionEnded(SessionStats{
			Initiator: true,
			Phase:     PhaseConnect,
			Outcome:   OutcomeDialError,
			Err:       err,
		}, false)
		return true, err
	}
	defer conn.Close()
	err = n.runContact(conn, true)
	return errors.Is(err, ErrPeerBusy), err
}

// runContact executes one slot-holding session and accounts its stats.
func (n *Node) runContact(conn io.ReadWriter, initiator bool) error {
	start := time.Now()
	n.sessionStarted()
	s := &session{n: n, conn: conn, initiator: initiator, timeout: n.cfg.SessionTimeout}
	if dl, ok := conn.(deadlineConn); ok {
		s.dl = dl
	}
	s.stats.Initiator = initiator
	err := s.run(n.cfg.Clock())
	s.stats.Duration = time.Since(start)
	s.stats.Err = err
	switch {
	case err == nil:
		s.stats.Outcome = OutcomeCompleted
		s.stats.Phase = PhaseDone
	case errors.Is(err, ErrPeerBusy):
		s.stats.Outcome = OutcomePeerBusy
	default:
		s.stats.Outcome = outcomeForError(err)
	}
	n.sessionEnded(s.stats, true)
	return err
}

// outcomeForError classifies a mid-protocol failure for stats: a CRC
// mismatch is corruption, a deadline hit is a timeout, connection death
// is a severed contact, anything else a protocol error.
func outcomeForError(err error) SessionOutcome {
	switch {
	case errors.Is(err, ErrCorruptFrame):
		return OutcomeCorrupt
	case errors.Is(err, os.ErrDeadlineExceeded):
		return OutcomeTimedOut
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return OutcomeTimedOut
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return OutcomeSevered
	}
	return OutcomeError
}

// --- State helpers ----------------------------------------------------------

// degreeLocked counts (and prunes) meetings inside the window. roleMu held.
func (n *Node) degreeLocked(now time.Duration) int {
	d := 0
	window := n.cfg.Protocol.Window
	for peer, at := range n.meetings {
		if now-at <= window {
			d++
		} else {
			delete(n.meetings, peer)
		}
	}
	return d
}

// brokersInWindowLocked counts (and prunes) recent broker sightings.
// roleMu held.
func (n *Node) brokersInWindowLocked(now time.Duration) (count int, meanDegree float64) {
	sum := 0
	window := n.cfg.Protocol.Window
	for id, s := range n.sightings {
		if now-s.at > window {
			delete(n.sightings, id)
			continue
		}
		count++
		sum += s.degree
	}
	if count > 0 {
		meanDegree = float64(sum) / float64(count)
	}
	return count, meanDegree
}

// becomeBrokerLocked promotes the node. roleMu held.
func (n *Node) becomeBrokerLocked(now time.Duration) {
	if n.broker {
		return
	}
	n.broker = true
	n.relay = tcbf.MustNew(n.filterCfg, now)
}

// becomeUserLocked demotes the node. roleMu held.
func (n *Node) becomeUserLocked() {
	n.broker = false
	n.relay = nil
}

// genuineFilter builds a fresh, unshared TCBF holding a snapshot of the
// node's interests.
func (n *Node) genuineFilter(now time.Duration) (*tcbf.Filter, error) {
	interests := n.Interests()
	f, err := tcbf.New(n.filterCfg, now)
	if err != nil {
		return nil, err
	}
	if err := f.InsertAll(interests, now); err != nil {
		return nil, err
	}
	return f, nil
}

// purge drops expired messages.
func (n *Node) purge(now time.Duration) {
	n.storeMu.Lock()
	defer n.storeMu.Unlock()
	for id, s := range n.produced {
		if now > s.expiresAt {
			delete(n.produced, id)
		}
	}
	for id, s := range n.carried {
		if now > s.expiresAt {
			delete(n.carried, id)
		}
	}
}

// deliver surfaces a message to the application once. A node never
// delivers its own message to itself, even when a broker carries a copy
// back to the producer. The OnDeliver hook runs with no locks held so a
// slow consumer stalls only its own session.
func (n *Node) deliver(msg workload.Message, payload []byte, direct bool) {
	if msg.Origin == int(n.cfg.ID) {
		return
	}
	n.storeMu.Lock()
	if _, dup := n.delivered[msg.ID]; dup {
		n.storeMu.Unlock()
		return
	}
	n.delivered[msg.ID] = struct{}{}
	n.storeMu.Unlock()
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(Delivery{Message: msg, Payload: payload, Direct: direct})
	}
}

// wants reports whether the message matches the node's interests.
func (n *Node) wants(msg *workload.Message) bool {
	n.subMu.RLock()
	defer n.subMu.RUnlock()
	for _, want := range n.interests {
		for _, k := range msg.MatchKeys() {
			if k == want {
				return true
			}
		}
	}
	return false
}
