package livenode

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"bsub/internal/core"
	"bsub/internal/engine"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// Delivery is a message that reached this node's subscriptions.
type Delivery struct {
	Message workload.Message
	Payload []byte
	// Direct reports whether the message arrived straight from its
	// producer (true) or through a broker (false).
	Direct bool
}

// Defaults for the session-engine knobs; selected when the corresponding
// Config field is zero.
const (
	// DefaultMaxSessions bounds concurrent contact sessions per node.
	DefaultMaxSessions = 8
	// DefaultMeetAttempts bounds Meet's retries on BUSY or dial failure.
	DefaultMeetAttempts = 3
	// DefaultMeetBackoff is the pause before Meet's first retry; it
	// doubles after every failed attempt.
	DefaultMeetBackoff = 25 * time.Millisecond
	// DefaultSessionTimeout bounds each single frame read or write in a
	// contact session; HUNET contacts are short, and a hung peer must
	// not pin a session slot forever.
	DefaultSessionTimeout = 10 * time.Second
	// DefaultDialTimeout bounds Meet's TCP connect.
	DefaultDialTimeout = 5 * time.Second
)

// Config parameterizes a live node. The protocol parameters reuse
// core.Config (the paper's Section V/VII values via core.DefaultConfig).
type Config struct {
	// ID must be unique across the mesh.
	ID uint32
	// Protocol holds the B-SUB parameters.
	Protocol core.Config
	// TTL is the message lifetime.
	TTL time.Duration
	// Clock returns the current time as an offset on a basis shared by
	// all nodes in the mesh (defaults to Unix wall time). Injected for
	// tests.
	Clock func() time.Duration
	// OnDeliver, when set, receives each delivered message exactly once.
	// It is called from session goroutines with no node locks held; a
	// slow implementation stalls only its own session.
	OnDeliver func(Delivery)
	// MaxSessions bounds how many contact sessions (inbound plus
	// outgoing) run concurrently; further inbound contacts are answered
	// with a BUSY frame and further Meet calls return ErrBusy. Zero or
	// negative selects DefaultMaxSessions.
	MaxSessions int
	// MeetAttempts bounds how many times one Meet call tries the
	// contact when the dial fails or either side is at capacity. Zero
	// or negative selects DefaultMeetAttempts.
	MeetAttempts int
	// MeetBackoff is the pause before Meet's first retry, doubled after
	// each failed attempt. Zero or negative selects DefaultMeetBackoff.
	MeetBackoff time.Duration
	// SessionTimeout bounds each single frame read or write inside a
	// contact session. The deadline is re-armed before every frame, so a
	// healthy transfer may run arbitrarily long while a stalled peer is
	// detected within one timeout. Zero or negative selects
	// DefaultSessionTimeout.
	SessionTimeout time.Duration
	// DialTimeout bounds Meet's TCP connect. Zero or negative selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// OnSession, when set, receives one SessionStats record per contact
	// attempt — completed, failed mid-protocol, refused at capacity, or
	// never connected. Called from session goroutines with no node
	// locks held.
	OnSession func(SessionStats)
	// OnStored, when set, is called once for each relayed copy newly
	// stored in the carried store — the hook a mesh layer uses to flood a
	// fresh copy onward to its broker peers. Called from session
	// goroutines with no node locks held; it must not block for long.
	OnStored func(msg workload.Message)
	// OnPeerGenuine, when set, receives each peer's wire-encoded genuine
	// (interest) filter as this node absorbs it during a contact
	// session's genuine phase — the hook a broker-tier mesh layer uses to
	// aggregate downstream subscriber interests (see internal/mesh). The
	// bytes are the peer's filter-backend encoding; the callee owns them.
	// Called from session goroutines with no node locks held.
	OnPeerGenuine func(peer uint32, encoded []byte)
	// GossipHandler, when set, answers inbound gossip frames: it receives
	// the dialer's payload and returns the reply payload. The byte
	// contents are opaque to this package. Called from connection
	// goroutines with no node locks held; it must be in-memory fast, as
	// gossip answers bypass the MaxSessions slots. Nil drops inbound
	// gossip.
	GossipHandler func(payload []byte) []byte
	// Dial overrides the transport dial used by Meet and Gossip; tests
	// inject faultnet fabrics to stand up partitions. Nil selects
	// net.DialTimeout("tcp", ...).
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
}

// Node is one live B-SUB device. Create with Listen, connect contacts with
// Meet, publish with Publish, and stop with Close.
//
// All protocol state lives in an engine.Node; the live node is a wire
// adapter that frames the engine's session steps over TCP. The engine is
// not safe for concurrent use, so every call into it holds mu — but mu is
// never held across network I/O, so sessions with distinct peers still
// run in parallel and a stalled peer never blocks the node.
type Node struct {
	cfg       Config
	filterCfg tcbf.Config

	listener  net.Listener
	wg        sync.WaitGroup
	closed    chan struct{}
	closeOnce sync.Once
	closeErr  error

	// sessions is the MaxSessions semaphore; every running session (in
	// either direction) holds one slot.
	sessions chan struct{}

	// mu guards the engine node and the publish sequence. It never
	// nests with statsMu, but the ranks pin the order if that ever
	// changes: mu first, statsMu innermost.
	//bsub:lockrank 10
	mu      sync.Mutex
	eng     *engine.Node
	nextSeq uint32

	// statsMu guards the session counters (see stats.go).
	//bsub:lockrank 20
	statsMu  sync.Mutex
	counters Counters
}

// Listen starts a node serving contact sessions on addr (e.g.
// "127.0.0.1:0").
func Listen(addr string, cfg Config) (*Node, error) {
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("livenode: TTL must be positive, got %v", cfg.TTL)
	}
	eng, err := engine.NewNode(int(cfg.ID), cfg.Protocol, cfg.TTL)
	if err != nil {
		return nil, fmt.Errorf("livenode: %w", err)
	}
	if cfg.Clock == nil {
		epoch := time.Unix(0, 0)
		cfg.Clock = func() time.Duration { return time.Since(epoch) }
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MeetAttempts <= 0 {
		cfg.MeetAttempts = DefaultMeetAttempts
	}
	if cfg.MeetBackoff <= 0 {
		cfg.MeetBackoff = DefaultMeetBackoff
	}
	if cfg.SessionTimeout <= 0 {
		cfg.SessionTimeout = DefaultSessionTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.Dial == nil {
		cfg.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenode: listen: %w", err)
	}
	n := &Node{
		cfg:       cfg,
		filterCfg: cfg.Protocol.FilterConfig(),
		listener:  ln,
		closed:    make(chan struct{}),
		sessions:  make(chan struct{}, cfg.MaxSessions),
		eng:       eng,
	}
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// ID returns the node's mesh-unique identifier.
func (n *Node) ID() uint32 { return n.cfg.ID }

// Close stops the listener and waits for in-flight sessions. It is safe
// to call concurrently and repeatedly; every call waits for shutdown to
// finish and returns the listener's close error.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.closed)
		n.closeErr = n.listener.Close()
	})
	n.wg.Wait()
	return n.closeErr
}

// Subscribe adds interest keys. In B-SUB terms, they enter the node's
// genuine filter and will be pushed to brokers on future contacts.
func (n *Node) Subscribe(keys ...workload.Key) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.eng.Subscribe(keys...)
}

// Interests returns a copy of the node's subscriptions.
func (n *Node) Interests() []workload.Key {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.Interests()
}

// Publish stores a message for dissemination and returns its mesh-wide ID.
// keys[0] is the primary content key; extras follow (multi-key extension).
func (n *Node) Publish(payload []byte, keys ...workload.Key) (int, error) {
	if len(keys) == 0 {
		return 0, errors.New("livenode: publish requires at least one key")
	}
	if len(payload) > workload.MaxMessageBytes {
		return 0, fmt.Errorf("livenode: payload %d bytes exceeds the %d-byte cap",
			len(payload), workload.MaxMessageBytes)
	}
	now := n.cfg.Clock()
	n.mu.Lock()
	defer n.mu.Unlock()
	id := int(uint64(n.cfg.ID)<<32 | uint64(n.nextSeq))
	n.nextSeq++
	msg := workload.Message{
		ID:        id,
		Key:       keys[0],
		Origin:    int(n.cfg.ID),
		Size:      len(payload),
		CreatedAt: now,
	}
	if len(keys) > 1 {
		msg.Extra = append([]workload.Key(nil), keys[1:]...)
	}
	n.eng.AddProduced(msg, append([]byte(nil), payload...))
	return id, nil
}

// ForgetDeliveries drops the engine's record of direct deliveries made to
// peer. The mesh calls it when it declares a peer dead: a restarted
// incarnation of that peer has an empty delivered set, and without this the
// producer's stale sent-marker would block redelivery to it forever. If the
// peer was wrongly suspected, its dedup absorbs the repeat delivery.
func (n *Node) ForgetDeliveries(peer uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.eng.ClearSentTo(engine.NodeID(peer))
}

// IsBroker reports whether the node currently serves as a broker.
func (n *Node) IsBroker() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.IsBroker()
}

// CarriedCount returns how many relayed copies the node holds.
func (n *Node) CarriedCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.eng.CarriedCount()
}

// CopyCensus returns how many replication copies of message id this node
// holds: the producer's remaining copy budget plus one if a relayed copy
// sits in the carried store. Summed across a mesh, the census must never
// exceed the protocol's CopyLimit — hand-offs conserve copies, dedup
// collapse and node death only destroy them.
func (n *Node) CopyCensus(id int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	copies := n.eng.ProducedCopies(id)
	if n.eng.HasCarried(id) {
		copies++
	}
	return copies
}

// serve accepts inbound contact sessions until Close. Persistent accept
// errors (EMFILE and friends) back off net/http-style instead of
// busy-spinning the loop at 100% CPU.
func (n *Node) serve() {
	defer n.wg.Done()
	var delay time.Duration
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			delay = nextAcceptDelay(delay)
			timer := time.NewTimer(delay)
			select {
			case <-n.closed:
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		delay = 0
		n.wg.Add(1)
		go n.handleInbound(conn)
	}
}

// nextAcceptDelay doubles the accept-retry pause from 5ms up to 1s.
func nextAcceptDelay(prev time.Duration) time.Duration {
	if prev == 0 {
		return 5 * time.Millisecond
	}
	if prev >= time.Second/2 {
		return time.Second
	}
	return prev * 2
}

// handleInbound routes one accepted connection. The first frame is read
// before a session slot is taken, so gossip datagrams — cheap, bounded,
// membership-critical — keep flowing while every contact slot is busy. At
// capacity the node answers a contact with a single BUSY frame — an
// explicit, retryable refusal — instead of slamming the connection.
func (n *Node) handleInbound(conn net.Conn) {
	defer n.wg.Done()
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(n.cfg.SessionTimeout))
	typ, body, err := readFrame(conn)
	if err != nil {
		// The peer connected but never produced a whole first frame; no
		// slot was held and no protocol ran.
		n.sessionEnded(SessionStats{
			Phase:   PhaseConnect,
			Outcome: outcomeForError(err),
			Err:     err,
		}, false)
		return
	}
	if typ == frameGossip {
		n.answerGossip(conn, body)
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	select {
	case n.sessions <- struct{}{}:
	default:
		_ = writeFrame(conn, frameBusy, nil)
		n.sessionEnded(SessionStats{
			Phase:   PhaseConnect,
			Outcome: OutcomeRefusedBusy,
			Err:     ErrBusy,
		}, false)
		// Drain the dialer's next bytes before closing: closing with
		// unread inbound data resets the connection, which can destroy
		// the BUSY frame before the peer reads it.
		_ = conn.SetReadDeadline(time.Now().Add(time.Second))
		_, _ = io.Copy(io.Discard, conn)
		return
	}
	defer func() { <-n.sessions }()
	_ = n.runContactPre(conn, false, typ, body)
}

// answerGossip serves one inbound gossip exchange: hand the payload to
// the mesh layer's handler, write its reply, done. No session slot, no
// engine state, no node locks.
func (n *Node) answerGossip(conn net.Conn, body []byte) {
	h := n.cfg.GossipHandler
	if h == nil {
		return
	}
	reply := h(body)
	n.gossipAnswered()
	_ = conn.SetWriteDeadline(time.Now().Add(n.cfg.SessionTimeout))
	_ = writeFrame(conn, frameGossip, reply)
}

// Gossip dials addr, exchanges one membership datagram, and returns the
// peer's reply payload. Gossip rides outside contact sessions: neither
// side spends a MaxSessions slot, so heartbeats stay live while contacts
// saturate the node. The payload bytes are opaque to this package.
func (n *Node) Gossip(addr string, payload []byte) ([]byte, error) {
	conn, err := n.cfg.Dial(addr, n.cfg.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("livenode: gossip dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(n.cfg.SessionTimeout))
	if err := writeFrame(conn, frameGossip, payload); err != nil {
		return nil, err
	}
	reply, err := expectFrame(conn, frameGossip)
	if err != nil {
		return nil, err
	}
	n.gossipSent()
	return reply, nil
}

// maxMeetBackoff caps Meet's exponential retry backoff; without a cap a
// generous MeetAttempts turns the doubling into hours-long sleeps.
const maxMeetBackoff = time.Second

// ErrBusy is returned by Meet when this node is already running
// MaxSessions contact sessions; the caller may retry, as a device whose
// radio is occupied.
var ErrBusy = errors.New("livenode: node at session capacity")

// ErrPeerBusy is returned by Meet when the remote node answered BUSY
// instead of joining the session; the caller may retry.
var ErrPeerBusy = errors.New("livenode: peer at session capacity")

// jitteredBackoff maps a backoff ceiling and a uniform random sample in
// [0, 1) to a retry delay drawn uniformly from [backoff/2, backoff) —
// equal jitter. Pure doubling would synchronize every dialer that failed
// against the same busy peer into a thundering herd that refinds the peer
// busy in lockstep; the jitter spreads the herd across half the window.
func jitteredBackoff(backoff time.Duration, sample float64) time.Duration {
	half := backoff / 2
	return half + time.Duration(sample*float64(half))
}

// Meet dials a peer and runs one contact session, mirroring two devices
// coming into Bluetooth range. Transient failures — a failed dial, this
// node at capacity, or the peer answering BUSY — are retried up to
// Config.MeetAttempts times under capped, jittered exponential backoff
// (each retry sleeps a uniform draw from [ceiling/2, ceiling), the
// ceiling doubling up to maxMeetBackoff); the last error is returned if
// every attempt fails. Protocol errors mid-session are not retried.
func (n *Node) Meet(addr string) error {
	backoff := n.cfg.MeetBackoff
	var err error
	for attempt := 0; attempt < n.cfg.MeetAttempts; attempt++ {
		if attempt > 0 {
			n.meetRetried()
			timer := time.NewTimer(jitteredBackoff(backoff, rand.Float64()))
			select {
			case <-n.closed:
				timer.Stop()
				return err
			case <-timer.C:
			}
			if backoff < maxMeetBackoff {
				backoff *= 2
			}
		}
		var retry bool
		retry, err = n.meetOnce(addr)
		if err == nil || !retry {
			return err
		}
	}
	return err
}

// meetOnce makes a single contact attempt. The session slot is reserved
// with a non-blocking acquire and no node lock is held across the dial,
// so a slow or failing dial never starves inbound contacts.
func (n *Node) meetOnce(addr string) (retry bool, err error) {
	select {
	case n.sessions <- struct{}{}:
	default:
		n.sessionEnded(SessionStats{
			Initiator: true,
			Phase:     PhaseConnect,
			Outcome:   OutcomeRefusedBusy,
			Err:       ErrBusy,
		}, false)
		return true, ErrBusy
	}
	defer func() { <-n.sessions }()
	conn, err := n.cfg.Dial(addr, n.cfg.DialTimeout)
	if err != nil {
		err = fmt.Errorf("livenode: dial %s: %w", addr, err)
		n.sessionEnded(SessionStats{
			Initiator: true,
			Phase:     PhaseConnect,
			Outcome:   OutcomeDialError,
			Err:       err,
		}, false)
		return true, err
	}
	defer conn.Close()
	err = n.runContact(conn, true)
	return errors.Is(err, ErrPeerBusy), err
}

// runContact executes one slot-holding session and accounts its stats. A
// failed session aborts its engine session, refunding any message copy
// that was claimed but never ACKed.
func (n *Node) runContact(conn io.ReadWriter, initiator bool) error {
	return n.runContactPre(conn, initiator, 0, nil)
}

// runContactPre is runContact with the session's first inbound frame
// already read (handleInbound peeks it to route gossip); preTyp zero
// means no frame was pre-read.
func (n *Node) runContactPre(conn io.ReadWriter, initiator bool, preTyp byte, preBody []byte) error {
	start := time.Now()
	n.sessionStarted()
	s := &session{n: n, conn: conn, initiator: initiator, timeout: n.cfg.SessionTimeout,
		preTyp: preTyp, preBody: preBody}
	if dl, ok := conn.(deadlineConn); ok {
		s.dl = dl
	}
	s.stats.Initiator = initiator
	err := s.run(n.cfg.Clock())
	if s.es != nil {
		n.mu.Lock()
		if err != nil {
			s.stats.MsgsRefunded += s.es.Abort()
		}
		// Recycle the engine session's scratch arena for the next contact;
		// on the error path the Abort above already refunded the claims.
		s.es.Release()
		n.mu.Unlock()
	}
	s.stats.Duration = time.Since(start)
	s.stats.Err = err
	switch {
	case err == nil:
		s.stats.Outcome = OutcomeCompleted
		s.stats.Phase = PhaseDone
	case errors.Is(err, ErrPeerBusy):
		s.stats.Outcome = OutcomePeerBusy
	default:
		s.stats.Outcome = outcomeForError(err)
	}
	n.sessionEnded(s.stats, true)
	return err
}

// outcomeForError classifies a mid-protocol failure for stats: a CRC
// mismatch is corruption, a deadline hit is a timeout, connection death
// is a severed contact, anything else a protocol error.
func outcomeForError(err error) SessionOutcome {
	switch {
	case errors.Is(err, ErrCorruptFrame):
		return OutcomeCorrupt
	case errors.Is(err, os.ErrDeadlineExceeded):
		return OutcomeTimedOut
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return OutcomeTimedOut
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) ||
		errors.Is(err, syscall.ECONNRESET) || errors.Is(err, syscall.EPIPE) {
		return OutcomeSevered
	}
	return OutcomeError
}

// --- Engine access ----------------------------------------------------------

// purge drops expired messages through the engine's decay-driven expiry
// (TTL from creation, the same rule the stores' lazy expiry applies).
func (n *Node) purge(now time.Duration) {
	n.mu.Lock()
	n.eng.Purge(now)
	n.mu.Unlock()
}

// acceptCarried ingests a relayed copy through the engine and surfaces a
// first-time delivery. The OnDeliver and OnStored hooks run with no locks
// held so a slow consumer stalls only its own session.
func (n *Node) acceptCarried(msg workload.Message, payload []byte, now time.Duration) {
	n.mu.Lock()
	acc := n.eng.AcceptCarried(msg, payload, now)
	n.mu.Unlock()
	if acc.Delivered {
		n.deliver(msg, payload, false)
	}
	if acc.Stored && n.cfg.OnStored != nil {
		n.cfg.OnStored(msg)
	}
}

// deliver surfaces a message to the application. The engine has already
// deduplicated (a message is Delivered at most once, never to its own
// producer); this only fires the hook.
func (n *Node) deliver(msg workload.Message, payload []byte, direct bool) {
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(Delivery{Message: msg, Payload: payload, Direct: direct})
	}
}
