package livenode

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"bsub/internal/core"
	"bsub/internal/tcbf"
	"bsub/internal/workload"
)

// Delivery is a message that reached this node's subscriptions.
type Delivery struct {
	Message workload.Message
	Payload []byte
	// Direct reports whether the message arrived straight from its
	// producer (true) or through a broker (false).
	Direct bool
}

// Config parameterizes a live node. The protocol parameters reuse
// core.Config (the paper's Section V/VII values via core.DefaultConfig).
type Config struct {
	// ID must be unique across the mesh.
	ID uint32
	// Protocol holds the B-SUB parameters.
	Protocol core.Config
	// TTL is the message lifetime.
	TTL time.Duration
	// Clock returns the current time as an offset on a basis shared by
	// all nodes in the mesh (defaults to Unix wall time). Injected for
	// tests.
	Clock func() time.Duration
	// OnDeliver, when set, receives each delivered message exactly once.
	// It is called from session goroutines; implementations must be fast
	// or dispatch to their own queue.
	OnDeliver func(Delivery)
}

type storedMessage struct {
	msg       workload.Message
	payload   []byte
	expiresAt time.Duration
	copies    int
	sent      map[uint32]struct{} // peers this copy was directly served to
}

// Node is one live B-SUB device. Create with Listen, connect contacts with
// Meet, publish with Publish, and stop with Close.
type Node struct {
	cfg       Config
	filterCfg tcbf.Config

	listener net.Listener
	wg       sync.WaitGroup
	closed   chan struct{}

	// mu guards all protocol state; a contact session holds it end to end
	// (contacts are short and sequential in HUNETs).
	mu        sync.Mutex
	interests []workload.Key
	broker    bool
	relay     *tcbf.Filter
	produced  map[int]*storedMessage
	carried   map[int]*storedMessage
	delivered map[int]struct{}
	meetings  map[uint32]time.Duration
	sightings map[uint32]brokerSighting
	nextSeq   uint32
}

type brokerSighting struct {
	at     time.Duration
	degree int
}

// Listen starts a node serving contact sessions on addr (e.g.
// "127.0.0.1:0").
func Listen(addr string, cfg Config) (*Node, error) {
	if cfg.TTL <= 0 {
		return nil, fmt.Errorf("livenode: TTL must be positive, got %v", cfg.TTL)
	}
	if err := validateProtocol(cfg.Protocol); err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		epoch := time.Unix(0, 0)
		cfg.Clock = func() time.Duration { return time.Since(epoch) }
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("livenode: listen: %w", err)
	}
	n := &Node{
		cfg: cfg,
		filterCfg: tcbf.Config{
			M:              cfg.Protocol.FilterM,
			K:              cfg.Protocol.FilterK,
			Initial:        cfg.Protocol.InitialCounter,
			DecayPerMinute: cfg.Protocol.DecayPerMinute,
		},
		listener:  ln,
		closed:    make(chan struct{}),
		produced:  make(map[int]*storedMessage),
		carried:   make(map[int]*storedMessage),
		delivered: make(map[int]struct{}),
		meetings:  make(map[uint32]time.Duration),
		sightings: make(map[uint32]brokerSighting),
	}
	n.wg.Add(1)
	go n.serve()
	return n, nil
}

// validateProtocol re-checks the core parameters livenode depends on
// (core validates them on Init inside the simulator; here there is no
// simulator).
func validateProtocol(c core.Config) error {
	switch {
	case c.FilterM <= 0 || c.FilterK <= 0:
		return fmt.Errorf("livenode: filter geometry (%d,%d) invalid", c.FilterM, c.FilterK)
	case c.InitialCounter <= 0:
		return fmt.Errorf("livenode: initial counter must be positive, got %g", c.InitialCounter)
	case c.DecayPerMinute < 0:
		return fmt.Errorf("livenode: decay factor must be non-negative, got %g", c.DecayPerMinute)
	case c.CopyLimit < 1:
		return fmt.Errorf("livenode: copy limit must be at least 1, got %d", c.CopyLimit)
	case c.BrokerLow < 0 || c.BrokerHigh < c.BrokerLow:
		return fmt.Errorf("livenode: broker thresholds (%d,%d) invalid", c.BrokerLow, c.BrokerHigh)
	case c.Window <= 0:
		return fmt.Errorf("livenode: window must be positive, got %v", c.Window)
	case c.RelayPartitions > 1:
		return fmt.Errorf("livenode: partitioned relay filters (%d) are not supported by the prototype", c.RelayPartitions)
	}
	return nil
}

// Addr returns the node's listen address.
func (n *Node) Addr() string { return n.listener.Addr().String() }

// ID returns the node's mesh-unique identifier.
func (n *Node) ID() uint32 { return n.cfg.ID }

// Close stops the listener and waits for in-flight sessions.
func (n *Node) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
	}
	close(n.closed)
	err := n.listener.Close()
	n.wg.Wait()
	return err
}

// Subscribe adds interest keys. In B-SUB terms, they enter the node's
// genuine filter and will be pushed to brokers on future contacts.
func (n *Node) Subscribe(keys ...workload.Key) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, k := range keys {
		dup := false
		for _, have := range n.interests {
			if have == k {
				dup = true
				break
			}
		}
		if !dup {
			n.interests = append(n.interests, k)
		}
	}
}

// Interests returns a copy of the node's subscriptions.
func (n *Node) Interests() []workload.Key {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]workload.Key(nil), n.interests...)
}

// Publish stores a message for dissemination and returns its mesh-wide ID.
// keys[0] is the primary content key; extras follow (multi-key extension).
func (n *Node) Publish(payload []byte, keys ...workload.Key) (int, error) {
	if len(keys) == 0 {
		return 0, errors.New("livenode: publish requires at least one key")
	}
	if len(payload) > workload.MaxMessageBytes {
		return 0, fmt.Errorf("livenode: payload %d bytes exceeds the %d-byte cap",
			len(payload), workload.MaxMessageBytes)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	now := n.cfg.Clock()
	id := int(uint64(n.cfg.ID)<<32 | uint64(n.nextSeq))
	n.nextSeq++
	msg := workload.Message{
		ID:        id,
		Key:       keys[0],
		Origin:    int(n.cfg.ID),
		Size:      len(payload),
		CreatedAt: now,
	}
	if len(keys) > 1 {
		msg.Extra = append([]workload.Key(nil), keys[1:]...)
	}
	n.produced[id] = &storedMessage{
		msg:       msg,
		payload:   append([]byte(nil), payload...),
		expiresAt: now + n.cfg.TTL,
		copies:    n.cfg.Protocol.CopyLimit,
	}
	return id, nil
}

// IsBroker reports whether the node currently serves as a broker.
func (n *Node) IsBroker() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.broker
}

// CarriedCount returns how many relayed copies the node holds.
func (n *Node) CarriedCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.carried)
}

// serve accepts inbound contact sessions until Close.
func (n *Node) serve() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
				continue // transient accept error
			}
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			defer conn.Close()
			// One session at a time: a busy node refuses the contact, like
			// a device whose radio is occupied. TryLock (never a blocking
			// Lock) on both the dialing and accepting side is what makes
			// simultaneous mutual dials deadlock-free.
			if !n.mu.TryLock() {
				return
			}
			defer n.mu.Unlock()
			_ = conn.SetDeadline(time.Now().Add(sessionDeadline))
			_ = n.runSession(conn, false)
		}()
	}
}

// sessionDeadline bounds one contact session; HUNET contacts are short,
// and a hung peer must not pin a node's radio forever.
const sessionDeadline = 10 * time.Second

// ErrBusy is returned by Meet when this node is already in a contact
// session; the caller may retry, as a device whose radio was occupied.
var ErrBusy = errors.New("livenode: node busy in another contact")

// Meet dials a peer and runs one contact session, mirroring two devices
// coming into Bluetooth range. If this node is already in a session it
// returns ErrBusy rather than queueing — blocking here could deadlock two
// nodes dialing each other simultaneously.
func (n *Node) Meet(addr string) error {
	if !n.mu.TryLock() {
		return ErrBusy
	}
	defer n.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("livenode: dial %s: %w", addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(sessionDeadline))
	return n.runSession(conn, true)
}

// --- State helpers (mu held) -------------------------------------------------

func (n *Node) degreeLocked(now time.Duration) int {
	d := 0
	window := n.cfg.Protocol.Window
	for peer, at := range n.meetings {
		if now-at <= window {
			d++
		} else {
			delete(n.meetings, peer)
		}
	}
	return d
}

func (n *Node) brokersInWindowLocked(now time.Duration) (count int, meanDegree float64) {
	sum := 0
	window := n.cfg.Protocol.Window
	for id, s := range n.sightings {
		if now-s.at > window {
			delete(n.sightings, id)
			continue
		}
		count++
		sum += s.degree
	}
	if count > 0 {
		meanDegree = float64(sum) / float64(count)
	}
	return count, meanDegree
}

func (n *Node) becomeBroker(now time.Duration) {
	if n.broker {
		return
	}
	n.broker = true
	n.relay = tcbf.MustNew(n.filterCfg, now)
}

func (n *Node) becomeUser() {
	n.broker = false
	n.relay = nil
}

// genuineFilterLocked builds a fresh TCBF holding the node's interests.
func (n *Node) genuineFilterLocked(now time.Duration) (*tcbf.Filter, error) {
	f, err := tcbf.New(n.filterCfg, now)
	if err != nil {
		return nil, err
	}
	if err := f.InsertAll(n.interests, now); err != nil {
		return nil, err
	}
	return f, nil
}

// purgeLocked drops expired messages.
func (n *Node) purgeLocked(now time.Duration) {
	for id, s := range n.produced {
		if now > s.expiresAt {
			delete(n.produced, id)
		}
	}
	for id, s := range n.carried {
		if now > s.expiresAt {
			delete(n.carried, id)
		}
	}
}

// deliverLocked surfaces a message to the application once. A node never
// delivers its own message to itself, even when a broker carries a copy
// back to the producer.
func (n *Node) deliverLocked(msg workload.Message, payload []byte, direct bool) {
	if msg.Origin == int(n.cfg.ID) {
		return
	}
	if _, dup := n.delivered[msg.ID]; dup {
		return
	}
	n.delivered[msg.ID] = struct{}{}
	if n.cfg.OnDeliver != nil {
		n.cfg.OnDeliver(Delivery{Message: msg, Payload: payload, Direct: direct})
	}
}

// wantsLocked reports whether the message matches the node's interests.
func (n *Node) wantsLocked(msg *workload.Message) bool {
	for _, want := range n.interests {
		for _, k := range msg.MatchKeys() {
			if k == want {
				return true
			}
		}
	}
	return false
}
