// Package xrand provides a compact deterministic pseudo-random generator
// for the streaming simulation stack. A PRNG is 8 bytes of splitmix64
// state — versus kilobytes for a math/rand source — which is what makes
// one independent stream per linked node pair (tracegen), per producing
// node (workload), and per contact component (sim) affordable at
// million-node populations. Streams derived from distinct seeds are
// order-independent: a stream's draws never depend on when it was
// instantiated or what other streams exist.
//
// This is simulation randomness, not cryptographic randomness.
package xrand

import "math"

// PRNG is a splitmix64 generator. The zero value is a valid (seed-0)
// stream; use New to spread caller seeds.
type PRNG uint64

// Mix64 is the splitmix64 finalizer, also usable on its own to derive
// child seeds from a root seed plus an index.
//
//bsub:hotpath
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator whose state is the scrambled seed, so nearby
// seeds (pair indices, node IDs) yield decorrelated streams.
func New(seed uint64) PRNG { return PRNG(Mix64(seed)) }

// Uint64 advances the stream and returns 64 uniform bits.
//
//bsub:hotpath
func (p *PRNG) Uint64() uint64 {
	*p += 0x9e3779b97f4a7c15
	return Mix64(uint64(*p))
}

// Float64 returns a uniform draw in [0, 1).
//
//bsub:hotpath
func (p *PRNG) Float64() float64 { return float64(p.Uint64()>>11) / (1 << 53) }

// Exp returns a unit-mean exponential draw.
//
//bsub:hotpath
func (p *PRNG) Exp() float64 { return -math.Log(1 - p.Float64()) }

// Intn returns a uniform draw in [0, n); n must be positive. The modulo
// bias is below 2⁻⁵³ for every n the simulator uses.
//
//bsub:hotpath
func (p *PRNG) Intn(n int) int {
	return int(p.Uint64() % uint64(n))
}

// Int63 returns 63 uniform bits. Together with Seed and Uint64 it makes
// *PRNG a math/rand Source64, so the simulator can hand protocols a
// *rand.Rand whose reseeding costs one multiply instead of refilling
// math/rand's 607-word feedback register.
//
//bsub:hotpath
func (p *PRNG) Int63() int64 { return int64(p.Uint64() >> 1) }

// Seed resets the stream, scrambling like New.
func (p *PRNG) Seed(seed int64) { *p = PRNG(Mix64(uint64(seed))) }
