package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The analyzer tests run against the hermetic GOPATH-style tree under
// testdata/src: module path "bsub", stdlib stubs alongside it. Expected
// findings are `// want `regex`` comments on the offending line, in the
// style of x/tools analysistest.

func fixtureProg(t *testing.T) *Program {
	t.Helper()
	prog, err := LoadFixture(filepath.Join("testdata", "src"), "bsub")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

type wantKey struct {
	file string
	line int
}

// collectWants extracts want-comment regexes from one fixture package.
func collectWants(t *testing.T, prog *Program, pkg *Package) map[wantKey]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey]*regexp.Regexp{}
	for _, file := range pkg.Files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				raw := strings.TrimSpace(strings.TrimPrefix(text, "want "))
				raw = strings.Trim(raw, "`")
				re, err := regexp.Compile(raw)
				if err != nil {
					t.Fatalf("bad want regex %q: %v", raw, err)
				}
				pos := prog.Fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				if _, dup := wants[key]; dup {
					t.Fatalf("%s:%d: more than one want comment on a line", pos.Filename, pos.Line)
				}
				wants[key] = re
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over the whole fixture module, restricts
// findings to pkgPath, and diffs them against that package's want
// comments. Returns the analyzer-wide suppressed count.
func checkFixture(t *testing.T, a *Analyzer, pkgPath string) int {
	t.Helper()
	prog := fixtureProg(t)
	pkg := prog.Packages[pkgPath]
	if pkg == nil {
		t.Fatalf("fixture package %s not loaded", pkgPath)
	}
	findings, suppressed := prog.Run(a)

	inPkg := map[string]bool{}
	for _, f := range pkg.Filenames {
		inPkg[f] = true
	}
	wants := collectWants(t, prog, pkg)
	matched := map[wantKey]bool{}
	for _, d := range findings {
		if !inPkg[d.Pos.Filename] {
			continue
		}
		key := wantKey{d.Pos.Filename, d.Pos.Line}
		re, ok := wants[key]
		if !ok {
			t.Errorf("unexpected finding: %s", d)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s:%d: got %q, want match for %q", d.Pos.Filename, d.Pos.Line, d.Message, re)
			continue
		}
		matched[key] = true
	}
	for key := range wants {
		if !matched[key] {
			t.Errorf("%s:%d: expected finding matching %q, got none", key.file, key.line, wants[key])
		}
	}
	return suppressed
}

func TestClaimSettleFixture(t *testing.T) {
	if got := checkFixture(t, ClaimSettle, "bsub/claimfix"); got != 1 {
		t.Errorf("suppressed = %d, want 1 (the //lint:ignore in claimfix)", got)
	}
}

func TestClaimSettleEngineStubClean(t *testing.T) {
	// The engine stub defines Claim itself; its own methods must not be
	// flagged.
	checkFixture(t, ClaimSettle, "bsub/internal/engine")
}

func TestHotpathAllocFixture(t *testing.T) {
	if got := checkFixture(t, HotpathAlloc, "bsub/hotfix"); got != 1 {
		t.Errorf("suppressed = %d, want 1 (the //lint:ignore in hotfix)", got)
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, Determinism, "bsub/internal/core")
}

func TestDeterminismSimFixture(t *testing.T) {
	// The sharded-runner patterns: map-ordered shard merges, ambient RNG
	// in pair streams, wall clocks in the event loop.
	for _, rel := range []string{
		"internal/sim", "internal/workload", "internal/metrics",
		"internal/xrand", "internal/tracegen",
		"internal/filter", "internal/bloofi",
	} {
		if !Determinism.Applies(rel) {
			t.Errorf("determinism must apply to %s", rel)
		}
	}
	checkFixture(t, Determinism, "bsub/internal/sim")
}

func TestDeterminismScopedOut(t *testing.T) {
	// bsub/other reads the wall clock and iterates maps: legal outside
	// the deterministic core.
	if Determinism.Applies("other") {
		t.Error("determinism must not apply to package other")
	}
	checkFixture(t, Determinism, "bsub/other")
}

func TestLockIOFixture(t *testing.T) {
	checkFixture(t, LockIO, "bsub/internal/livenode")
}

func TestLockIOMeshFixture(t *testing.T) {
	if !LockIO.Applies("internal/mesh") {
		t.Fatal("lockio must apply to internal/mesh")
	}
	if LockIO.Applies("internal/meshier") {
		t.Error("lockio must not apply to sibling packages by prefix")
	}
	checkFixture(t, LockIO, "bsub/internal/mesh")
}

func TestWireErrFixture(t *testing.T) {
	checkFixture(t, WireErr, "bsub/internal/tcbf")
}

func TestWireErrScope(t *testing.T) {
	// PR 10 widened the analyzer beyond livenode/tcbf to every package
	// with a wire codec.
	for _, rel := range []string{
		"internal/livenode", "internal/tcbf", "internal/mesh",
		"internal/filter", "internal/bloofi",
	} {
		if !WireErr.Applies(rel) {
			t.Errorf("wireerr must apply to %s", rel)
		}
	}
	if WireErr.Applies("internal/engine") {
		t.Error("wireerr must not apply to internal/engine")
	}
}

func TestLifecycleFixture(t *testing.T) {
	for _, rel := range []string{
		"internal/livenode", "internal/mesh", "internal/sim",
		"internal/mesh/lifecyclefix",
	} {
		if !Lifecycle.Applies(rel) {
			t.Errorf("lifecycle must apply to %s", rel)
		}
	}
	if Lifecycle.Applies("internal/engine") || Lifecycle.Applies("internal/simmer") {
		t.Error("lifecycle scope leaked to unrelated packages")
	}
	checkFixture(t, Lifecycle, "bsub/internal/mesh/lifecyclefix")
}

func TestLifecycleMeshFixtureClean(t *testing.T) {
	// The lockio mesh fixture's spawn-under-lock idiom (Add then go with
	// a deferred Done) must stay legal under lifecycle too. That package
	// carries lockio want comments, so diff by hand: no lifecycle
	// finding may land in its files.
	prog := fixtureProg(t)
	pkg := prog.Packages["bsub/internal/mesh"]
	if pkg == nil {
		t.Fatal("fixture package bsub/internal/mesh not loaded")
	}
	inPkg := map[string]bool{}
	for _, f := range pkg.Filenames {
		inPkg[f] = true
	}
	findings, _ := prog.Run(Lifecycle)
	for _, d := range findings {
		if inPkg[d.Pos.Filename] {
			t.Errorf("lifecycle flagged the tracked spawn idiom: %s", d)
		}
	}
}

func TestLockOrderFixture(t *testing.T) {
	if !LockOrder.Applies("internal/mesh") || !LockOrder.Applies("internal/livenode") {
		t.Fatal("lockorder must apply to internal/mesh and internal/livenode")
	}
	if LockOrder.Applies("internal/engine") {
		t.Error("lockorder must not apply to internal/engine")
	}
	checkFixture(t, LockOrder, "bsub/internal/mesh/lockorderfix")
}

func TestWireTaintFixture(t *testing.T) {
	for _, rel := range []string{
		"internal/livenode", "internal/mesh", "internal/tcbf",
		"internal/filter", "internal/bloofi",
	} {
		if !WireTaint.Applies(rel) {
			t.Errorf("wiretaint must apply to %s", rel)
		}
	}
	if WireTaint.Applies("internal/engine") {
		t.Error("wiretaint must not apply to internal/engine")
	}
	checkFixture(t, WireTaint, "bsub/internal/livenode/wiretaintfix")
}

func TestByName(t *testing.T) {
	got, err := ByName("claimsettle, lockio")
	if err != nil || len(got) != 2 || got[0].Name != "claimsettle" || got[1].Name != "lockio" {
		t.Errorf("ByName = %v, %v", got, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch) should fail")
	}
	if _, err := ByName(""); err == nil {
		t.Error("ByName(empty) should fail")
	}
}
