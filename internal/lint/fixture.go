package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// LoadFixture loads a hermetic GOPATH-style source tree rooted at
// srcRoot: every directory containing .go files is a package whose
// import path is its path relative to srcRoot. Stub packages named like
// standard-library paths ("fmt", "sync", "time") stand in for the real
// ones, so analyzer unit tests never touch GOROOT and stay fast and
// hermetic. Packages whose path is modulePath or lives under it are
// treated as module packages and analyzed.
func LoadFixture(srcRoot, modulePath string) (*Program, error) {
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		Packages:   map[string]*Package{},
	}
	dirs := map[string][]string{} // import path -> files
	err := filepath.Walk(srcRoot, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(srcRoot, filepath.Dir(path))
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		dirs[ip] = append(dirs[ip], path)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Parse everything up front so imports are known for ordering.
	parsed := map[string]*Package{}
	imports := map[string][]string{}
	for ip, files := range dirs {
		sort.Strings(files)
		pkg := &Package{
			Path:     ip,
			Dir:      filepath.Dir(files[0]),
			Standard: !isModulePath(ip, modulePath),
			InModule: isModulePath(ip, modulePath),
		}
		for _, filename := range files {
			file, err := parser.ParseFile(prog.Fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			pkg.Files = append(pkg.Files, file)
			pkg.Filenames = append(pkg.Filenames, filename)
			for _, spec := range file.Imports {
				path, _ := strconv.Unquote(spec.Path.Value)
				imports[ip] = append(imports[ip], path)
			}
		}
		parsed[ip] = pkg
	}

	// Dependency-order the packages (imports first).
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(ip string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("fixture import cycle at %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, dep := range imports[ip] {
			if _, ok := parsed[dep]; !ok {
				return fmt.Errorf("fixture package %s imports %s, which has no stub under %s", ip, dep, srcRoot)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	var roots []string
	for ip := range parsed {
		roots = append(roots, ip)
	}
	sort.Strings(roots)
	for _, ip := range roots {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	for _, ip := range order {
		pkg := parsed[ip]
		var typeErrs []string
		conf := types.Config{
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
			Importer: fixtureImporter{prog: prog},
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		pkg.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		tpkg, _ := conf.Check(ip, prog.Fset, pkg.Files, pkg.Info)
		pkg.Types = tpkg
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("fixture %s: %s", ip, strings.Join(typeErrs, "; "))
		}
		prog.Packages[ip] = pkg
		if pkg.InModule {
			prog.Module = append(prog.Module, pkg)
		}
	}
	prog.collectAnnotations()
	return prog, nil
}

func isModulePath(ip, modulePath string) bool {
	return ip == modulePath || strings.HasPrefix(ip, modulePath+"/")
}

type fixtureImporter struct {
	prog *Program
}

func (f fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := f.prog.Packages[path]; ok {
		return pkg.Types, nil
	}
	return nil, fmt.Errorf("fixture import %q not loaded", path)
}
