package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockIO makes the PR 1 lock-held-dial bug structurally impossible: in
// internal/livenode and internal/mesh, no blocking operation — net/io
// calls, channel sends and receives, select without default, time.Sleep,
// sync.WaitGroup.Wait, or a call through a function value (user hooks)
// — may happen while a sync.Mutex or RWMutex is held. Blocking-ness
// propagates through the package-local call graph, so a helper that
// writes a frame is just as forbidden under a lock as conn.Write
// itself. The mesh daemon lives under the same law because its event
// loop holds the membership lock while scheduling: a dial or enqueue
// that blocked there would stall every peer at once.
//
// Deferred calls are exempt (they run at function exit, after the
// deferred unlocks pair off), and goroutine bodies start with a clean
// slate — a goroutine spawned under a lock does not hold it.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "no blocking I/O, channel ops, or dynamic calls while a mutex is held in internal/livenode and internal/mesh",
	Applies: func(rel string) bool {
		for _, pkg := range []string{"internal/livenode", "internal/mesh"} {
			if hasSuffixElem(rel, pkg) || strings.Contains(rel+"/", "/"+pkg+"/") {
				return true
			}
		}
		return false
	},
	Run: runLockIO,
}

// nonBlockingConnMethods are net.Conn methods that only mutate local
// state and never touch the wire.
var nonBlockingConnMethods = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
	"LocalAddr":        true,
	"RemoteAddr":       true,
}

type lockChecker struct {
	pass *Pass
	info *types.Info
	// blocking maps package-local functions to a short reason why they
	// block, after fixpoint propagation through the call graph.
	blocking map[*types.Func]string
}

func runLockIO(pass *Pass) {
	c := &lockChecker{pass: pass, info: pass.Pkg.Info, blocking: map[*types.Func]string{}}

	// Phase 1+2: classify directly blocking functions, then propagate
	// through same-package calls to a fixpoint.
	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var decls []fnDecl
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
			decls = append(decls, fnDecl{obj, fd})
		}
	})
	for _, d := range decls {
		if reason := c.directBlockReason(d.decl.Body); reason != "" {
			c.blocking[d.obj] = reason
		}
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			if _, done := c.blocking[d.obj]; done {
				continue
			}
			c.inspectSkippingFuncLits(d.decl.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				fn := calleeOf(c.info, call)
				if fn == nil || fn.Pkg() != pass.Pkg.Types {
					return
				}
				if _, blocks := c.blocking[fn]; blocks {
					c.blocking[d.obj] = "calls " + fn.Name() + ", which blocks"
					changed = true
				}
			})
		}
	}

	// Phase 3: walk each function and closure tracking held locks.
	for _, d := range decls {
		c.walkStmts(d.decl.Body.List, map[string]bool{})
	}
	for _, d := range decls {
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.walkStmts(lit.Body.List, map[string]bool{})
				return false
			}
			return true
		})
	}
}

// mutexMethod returns the lock expression and method name if call is
// m.Lock/RLock/Unlock/RUnlock on a sync mutex.
func (c *lockChecker) mutexMethod(call *ast.CallExpr) (lockExpr string, method string, ok bool) {
	recv, method, isMutex := syncCallee(c.info, call, "Mutex", "RWMutex")
	if !isMutex {
		return "", "", false
	}
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(recv), method, true
	}
	return "", "", false
}

// blockReason classifies a single node as a blocking operation.
func (c *lockChecker) blockReason(n ast.Node) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive"
		}
	case *ast.CallExpr:
		if _, _, isMutex := c.mutexMethod(n); isMutex {
			return ""
		}
		fn := calleeOf(c.info, n)
		if fn != nil {
			switch path := pkgPathOf(fn); {
			case path == "net":
				return "net." + fn.Name()
			case path == "io":
				return "io." + fn.Name()
			case path == "time" && fn.Name() == "Sleep":
				return "time.Sleep"
			case path == "sync" && fn.Name() == "Wait":
				return "sync wait"
			}
			if _, blocks := c.blocking[fn]; blocks && fn.Pkg() == c.pass.Pkg.Types {
				return "call to " + fn.Name() + ", which blocks"
			}
			return ""
		}
		// Unresolved calls: conversions and builtins are fine; interface
		// methods on net/io types are wire I/O; calls through function
		// values (config hooks) may do anything and count as blocking.
		fun := ast.Unparen(n.Fun)
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if s, found := c.info.Selections[sel]; found {
				if named := namedOf(s.Recv()); named != nil && named.Obj().Pkg() != nil {
					switch named.Obj().Pkg().Path() {
					case "net", "io":
						if nonBlockingConnMethods[sel.Sel.Name] {
							return ""
						}
						return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
					}
				}
				if types.IsInterface(s.Recv()) {
					return ""
				}
			}
		}
		if tv, ok := c.info.Types[n.Fun]; ok {
			if tv.IsType() {
				return "" // conversion
			}
			if id, ok := fun.(*ast.Ident); ok {
				if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin {
					return ""
				}
			}
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return "call through a function value"
			}
		}
	}
	return ""
}

// directBlockReason scans a body (excluding nested closures) for any
// blocking operation.
func (c *lockChecker) directBlockReason(body *ast.BlockStmt) string {
	reason := ""
	c.inspectSkippingFuncLits(body, func(n ast.Node) {
		if reason != "" {
			return
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			if !selectHasDefault(sel) {
				reason = "select without default"
			}
			return
		}
		if r := c.blockReason(n); r != "" {
			reason = r
		}
	})
	return reason
}

func (c *lockChecker) inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walkStmts walks a statement list in source order maintaining the set
// of held locks. Branch bodies get a copy: a branch that unlocks and
// returns must not clear the lock for the fall-through path.
func (c *lockChecker) walkStmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		c.walkStmt(s, held)
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *lockChecker) walkStmt(s ast.Stmt, held map[string]bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if lockExpr, method, isMutex := c.mutexMethod(call); isMutex {
				switch method {
				case "Lock", "RLock":
					held[lockExpr] = true
				case "Unlock", "RUnlock":
					delete(held, lockExpr)
				}
				return
			}
		}
		c.scanForBlocking(s.X, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held for the rest of the
		// body; other deferred calls run after the locks pair off and
		// are exempt. Arguments are evaluated now, though.
		for _, a := range s.Call.Args {
			c.scanForBlocking(a, held)
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			c.scanForBlocking(a, held)
		}
		// The goroutine body runs without the spawner's locks; its
		// FuncLit is checked separately with a clean slate.
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanForBlocking(e, held)
		}
		for _, e := range s.Lhs {
			c.scanForBlocking(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanForBlocking(e, held)
		}
	case *ast.IncDecStmt:
		c.scanForBlocking(s.X, held)
	case *ast.SendStmt:
		c.reportIfHeld(s.Pos(), "channel send", held)
		c.scanForBlocking(s.Chan, held)
		c.scanForBlocking(s.Value, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.scanForBlocking(s.Cond, held)
		c.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanForBlocking(s.Cond, held)
		}
		inner := copyHeld(held)
		c.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			c.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.scanForBlocking(s.X, held)
		c.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanForBlocking(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			c.reportIfHeld(s.Pos(), "select without default", held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					c.walkStmt(cc.Comm, inner)
				}
				c.walkStmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanForBlocking(v, held)
					}
				}
			}
		}
	}
}

// scanForBlocking reports every blocking operation in the expression
// (excluding closure bodies) if any lock is held.
func (c *lockChecker) scanForBlocking(e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n == nil {
			return true
		}
		if reason := c.blockReason(n); reason != "" {
			c.reportIfHeld(n.Pos(), reason, held)
		}
		return true
	})
}

func (c *lockChecker) reportIfHeld(pos token.Pos, what string, held map[string]bool) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	if len(names) > 1 {
		// Deterministic output when several locks are held.
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
	}
	c.pass.Reportf(pos, "%s while %s is held", what, strings.Join(names, ", "))
}
