// Package lint implements bsublint, a small analyzer driver plus the
// repo-specific analyzers that mechanically enforce the engine's
// invariants: claims settled exactly once (claimsettle), an
// allocation-free contact hot path (hotpathalloc), deterministic replay
// (determinism), no blocking I/O under locks (lockio), and no silently
// dropped wire errors (wireerr).
//
// The package is deliberately stdlib-only: packages are listed with
// `go list -json -deps`, parsed with go/parser, and type-checked with
// go/types in dependency order. No golang.org/x/tools machinery is
// used, so the linter builds anywhere the repo builds.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding, located at a position inside a module file.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's output format: file:line: analyzer: message.
// The filename is kept as loaded; callers may relativize Pos.Filename
// before printing.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: bsub/%s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check run over every module package it applies to.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters by package path relative to the module root
	// ("internal/engine", "cmd/livemesh", "" for the root package).
	// nil means the analyzer runs on every module package.
	Applies func(rel string) bool
	Run     func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Prog     *Program
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path
	Dir       string
	Standard  bool // GOROOT package (type-checked signatures only)
	InModule  bool // belongs to the module under analysis
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info
}

// Rel returns the package path relative to the module root, or the
// full path unchanged for non-module packages.
func (p *Package) Rel(modulePath string) string {
	if p.Path == modulePath {
		return ""
	}
	return strings.TrimPrefix(p.Path, modulePath+"/")
}

// Program is a fully loaded dependency closure plus cross-package facts.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Packages   map[string]*Package // by import path, full closure
	Module     []*Package          // module packages, dependency order

	// Hotpath and Coldpath record functions whose declarations carry a
	// //bsub:hotpath or //bsub:coldpath directive. Keyed by the
	// *types.Func object so identity survives cross-package lookups
	// within one type-checker universe.
	Hotpath  map[types.Object]bool
	Coldpath map[types.Object]bool
}

// collectAnnotations scans every module package for //bsub:hotpath and
// //bsub:coldpath directives attached to function declarations.
func (prog *Program) collectAnnotations() {
	prog.Hotpath = map[types.Object]bool{}
	prog.Coldpath = map[types.Object]bool{}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				obj := pkg.Info.Defs[fd.Name]
				if obj == nil {
					continue
				}
				// Directives are stripped by CommentGroup.Text, so scan
				// the raw comment list.
				for _, c := range fd.Doc.List {
					switch strings.TrimSpace(c.Text) {
					case "//bsub:hotpath":
						prog.Hotpath[obj] = true
					case "//bsub:coldpath":
						prog.Coldpath[obj] = true
					}
				}
			}
		}
	}
}

// suppression is one //lint:ignore bsub/<name> reason directive. It
// suppresses findings of that analyzer on its own line and on the line
// immediately following it (covering both end-of-line and
// preceding-line comment placement).
type suppression struct {
	file     string
	line     int
	analyzer string
}

func collectSuppressions(fset *token.FileSet, pkgs []*Package) []suppression {
	var out []suppression
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "lint:ignore ") {
						continue
					}
					fields := strings.Fields(text)
					// lint:ignore bsub/<name> <reason...> — a missing
					// reason keeps the directive inert, matching the
					// documented format strictly.
					if len(fields) < 3 || !strings.HasPrefix(fields[1], "bsub/") {
						continue
					}
					pos := fset.Position(c.Pos())
					out = append(out, suppression{
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: strings.TrimPrefix(fields[1], "bsub/"),
					})
				}
			}
		}
	}
	return out
}

// Run executes the analyzers over every module package each applies to
// and returns the surviving findings sorted by position, plus the count
// of findings silenced by //lint:ignore directives.
func (prog *Program) Run(analyzers ...*Analyzer) (findings []Diagnostic, suppressed int) {
	var all []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Module {
			if a.Applies != nil && !a.Applies(pkg.Rel(prog.ModulePath)) {
				continue
			}
			pass := &Pass{Prog: prog, Pkg: pkg, analyzer: a, diags: &all}
			a.Run(pass)
		}
	}
	sups := collectSuppressions(prog.Fset, prog.Module)
	covered := func(d Diagnostic) bool {
		for _, s := range sups {
			if s.analyzer == d.Analyzer && s.file == d.Pos.Filename &&
				(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
				return true
			}
		}
		return false
	}
	for _, d := range all {
		if covered(d) {
			suppressed++
			continue
		}
		findings = append(findings, d)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, suppressed
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ClaimSettle,
		HotpathAlloc,
		Determinism,
		LockIO,
		WireErr,
	}
}

// ByName resolves a comma-separated analyzer list ("claimsettle,lockio").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// Relativize rewrites diagnostic filenames relative to dir when
// possible, for stable, readable driver output.
func Relativize(dir string, ds []Diagnostic) {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	for i := range ds {
		if rel, err := filepath.Rel(dir, ds[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			ds[i].Pos.Filename = rel
		}
	}
}
