// Package lint implements bsublint, a small analyzer driver plus the
// repo-specific analyzers that mechanically enforce the engine's
// invariants: claims settled exactly once (claimsettle), an
// allocation-free contact hot path (hotpathalloc), deterministic replay
// (determinism), no blocking I/O under locks (lockio), mutex
// acquisition in //bsub:lockrank order (lockorder), every goroutine
// tied to a shutdown path (lifecycle), no silently dropped wire errors
// (wireerr), and wire-derived lengths validated before use (wiretaint).
//
// The package is deliberately stdlib-only: packages are listed with
// `go list -json -deps`, parsed with go/parser, and type-checked with
// go/types in dependency order — in parallel waves, one wave per
// dependency depth. No golang.org/x/tools machinery is used, so the
// linter builds anywhere the repo builds. Findings can be cached per
// package keyed by a content hash of the package's files and transitive
// dependencies (see TryCache and WriteCache), which is what
// `make lint-fast` uses.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Diagnostic is one finding, located at a position inside a module file.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the driver's output format: file:line: analyzer: message.
// The filename is kept as loaded; callers may relativize Pos.Filename
// before printing.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: bsub/%s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check run over every module package it applies to.
type Analyzer struct {
	Name string
	Doc  string
	// Applies filters by package path relative to the module root
	// ("internal/engine", "cmd/livemesh", "" for the root package).
	// nil means the analyzer runs on every module package.
	Applies func(rel string) bool
	Run     func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Prog     *Program
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path
	Dir       string
	Standard  bool // GOROOT package (type-checked signatures only)
	InModule  bool // belongs to the module under analysis
	Files     []*ast.File
	Filenames []string
	Imports   []string // import paths, as listed (cache keying)
	Types     *types.Package
	Info      *types.Info
}

// Rel returns the package path relative to the module root, or the
// full path unchanged for non-module packages.
func (p *Package) Rel(modulePath string) string {
	if p.Path == modulePath {
		return ""
	}
	return strings.TrimPrefix(p.Path, modulePath+"/")
}

// Program is a fully loaded dependency closure plus cross-package facts.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	Packages   map[string]*Package // by import path, full closure
	Module     []*Package          // module packages, dependency order

	// Hotpath and Coldpath record functions whose declarations carry a
	// //bsub:hotpath or //bsub:coldpath directive. Keyed by the
	// *types.Func object so identity survives cross-package lookups
	// within one type-checker universe.
	Hotpath  map[types.Object]bool
	Coldpath map[types.Object]bool

	// LockRanks records mutex fields annotated //bsub:lockrank N, the
	// declared acquisition order the lockorder analyzer enforces
	// (lower ranks are taken first). BadLockRanks holds malformed or
	// misplaced annotations, reported by lockorder in the owning
	// package.
	LockRanks    map[types.Object]LockRank
	BadLockRanks []badLockRank
}

// LockRank is one declared lock-order position.
type LockRank struct {
	Rank int
	Name string // display name, e.g. "Mesh.mu"
}

type badLockRank struct {
	pos token.Pos
	msg string
}

// collectAnnotations scans every module package for //bsub:hotpath and
// //bsub:coldpath directives attached to function declarations, and
// //bsub:lockrank directives attached to mutex fields.
func (prog *Program) collectAnnotations() {
	prog.Hotpath = map[types.Object]bool{}
	prog.Coldpath = map[types.Object]bool{}
	prog.LockRanks = map[types.Object]LockRank{}
	for _, pkg := range prog.Module {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch decl := decl.(type) {
				case *ast.FuncDecl:
					if decl.Doc == nil {
						continue
					}
					obj := pkg.Info.Defs[decl.Name]
					if obj == nil {
						continue
					}
					// Directives are stripped by CommentGroup.Text, so
					// scan the raw comment list.
					for _, c := range decl.Doc.List {
						switch strings.TrimSpace(c.Text) {
						case "//bsub:hotpath":
							prog.Hotpath[obj] = true
						case "//bsub:coldpath":
							prog.Coldpath[obj] = true
						}
					}
				case *ast.GenDecl:
					prog.collectLockRanks(pkg, decl)
				}
			}
		}
	}
}

// collectLockRanks pulls //bsub:lockrank N directives off struct fields
// in one type declaration. The directive may sit in the field's doc
// comment or its trailing line comment; the field must be a sync.Mutex
// or sync.RWMutex and N a decimal integer, or the annotation is
// recorded as malformed.
func (prog *Program) collectLockRanks(pkg *Package, decl *ast.GenDecl) {
	if decl.Tok != token.TYPE {
		return
	}
	for _, spec := range decl.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			arg, found := lockRankDirective(field)
			if !found {
				continue
			}
			rank, err := strconv.Atoi(arg)
			if err != nil {
				prog.BadLockRanks = append(prog.BadLockRanks, badLockRank{
					pos: field.Pos(),
					msg: fmt.Sprintf("malformed //bsub:lockrank %q: rank must be a decimal integer", arg),
				})
				continue
			}
			for _, name := range field.Names {
				obj := pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				if !isNamedType(obj.Type(), "sync", "Mutex") && !isNamedType(obj.Type(), "sync", "RWMutex") {
					prog.BadLockRanks = append(prog.BadLockRanks, badLockRank{
						pos: name.Pos(),
						msg: fmt.Sprintf("//bsub:lockrank on %s.%s, which is not a sync.Mutex or sync.RWMutex", ts.Name.Name, name.Name),
					})
					continue
				}
				prog.LockRanks[obj] = LockRank{Rank: rank, Name: ts.Name.Name + "." + name.Name}
			}
		}
	}
}

// lockRankDirective extracts the argument of a //bsub:lockrank
// directive from a struct field's comments.
func lockRankDirective(field *ast.Field) (arg string, found bool) {
	for _, group := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if group == nil {
			continue
		}
		for _, c := range group.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, "//bsub:lockrank") {
				continue
			}
			return strings.TrimSpace(strings.TrimPrefix(text, "//bsub:lockrank")), true
		}
	}
	return "", false
}

// suppression is one //lint:ignore bsub/<name> reason directive. It
// suppresses findings of that analyzer on its own line and on the line
// immediately following it (covering both end-of-line and
// preceding-line comment placement).
type suppression struct {
	file     string
	line     int
	analyzer string
}

func collectSuppressions(fset *token.FileSet, pkgs []*Package) []suppression {
	var out []suppression
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, group := range file.Comments {
				for _, c := range group.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "lint:ignore ") {
						continue
					}
					fields := strings.Fields(text)
					// lint:ignore bsub/<name> <reason...> — a missing
					// reason keeps the directive inert, matching the
					// documented format strictly.
					if len(fields) < 3 || !strings.HasPrefix(fields[1], "bsub/") {
						continue
					}
					pos := fset.Position(c.Pos())
					out = append(out, suppression{
						file:     pos.Filename,
						line:     pos.Line,
						analyzer: strings.TrimPrefix(fields[1], "bsub/"),
					})
				}
			}
		}
	}
	return out
}

// PackageResult is one package's findings after suppression filtering,
// sorted by position. It is the unit the findings cache stores.
type PackageResult struct {
	Pkg        *Package
	Findings   []Diagnostic
	Suppressed int
}

// Run executes the analyzers over every module package each applies to
// and returns the surviving findings sorted by position, plus the count
// of findings silenced by //lint:ignore directives. Analysis fans out
// over a worker pool: packages are independent once the wave-ordered
// type-check in the loader has finished.
func (prog *Program) Run(analyzers ...*Analyzer) (findings []Diagnostic, suppressed int) {
	results := prog.RunPackages(prog.Module, analyzers...)
	for _, r := range results {
		findings = append(findings, r.Findings...)
		suppressed += r.Suppressed
	}
	sortDiagnostics(findings)
	return findings, suppressed
}

// RunPackages analyzes the given module packages concurrently, one
// worker per package up to GOMAXPROCS.
func (prog *Program) RunPackages(pkgs []*Package, analyzers ...*Analyzer) []*PackageResult {
	results := make([]*PackageResult, len(pkgs))
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = prog.runPackage(pkg, analyzers)
		}(i, pkg)
	}
	wg.Wait()
	return results
}

// runPackage runs every applicable analyzer over one package and
// filters the findings through that package's //lint:ignore directives.
// Suppression matching is per-file, so filtering per package is exactly
// equivalent to the whole-module pass — which is what makes per-package
// finding caching sound.
func (prog *Program) runPackage(pkg *Package, analyzers []*Analyzer) *PackageResult {
	var all []Diagnostic
	rel := pkg.Rel(prog.ModulePath)
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(rel) {
			continue
		}
		a.Run(&Pass{Prog: prog, Pkg: pkg, analyzer: a, diags: &all})
	}
	res := &PackageResult{Pkg: pkg}
	sups := collectSuppressions(prog.Fset, []*Package{pkg})
	covered := func(d Diagnostic) bool {
		for _, s := range sups {
			if s.analyzer == d.Analyzer && s.file == d.Pos.Filename &&
				(s.line == d.Pos.Line || s.line == d.Pos.Line-1) {
				return true
			}
		}
		return false
	}
	for _, d := range all {
		if covered(d) {
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, d)
	}
	sortDiagnostics(res.Findings)
	return res
}

// SortDiagnostics orders findings by file, line, column, analyzer — the
// driver's stable output order. Callers that assemble findings from
// RunPackages or relativize paths re-sort before printing so text and
// cached output stay byte-identical.
func SortDiagnostics(ds []Diagnostic) { sortDiagnostics(ds) }

// sortDiagnostics orders findings by file, line, column, analyzer — the
// driver's stable output order.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		ClaimSettle,
		HotpathAlloc,
		Determinism,
		LockIO,
		LockOrder,
		Lifecycle,
		WireErr,
		WireTaint,
	}
}

// ByName resolves a comma-separated analyzer list ("claimsettle,lockio").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// Relativize rewrites diagnostic filenames relative to dir when
// possible, for stable, readable driver output.
func Relativize(dir string, ds []Diagnostic) {
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	for i := range ds {
		if rel, err := filepath.Rel(dir, ds[i].Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			ds[i].Pos.Filename = rel
		}
	}
}
