package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// LoadModule lists patterns (plus their full dependency closure) in dir
// via `go list -json -deps` and type-checks everything in dependency
// order: standard-library packages with IgnoreFuncBodies (only their
// exported shape matters), module packages fully, with ast and types
// info retained for analysis.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list -json: %w (%s)", err, stderr.String())
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %w (%s)", err, strings.TrimSpace(stderr.String()))
	}
	modulePath := ""
	for _, lp := range listed {
		if lp.Module != nil && lp.Module.Main {
			modulePath = lp.Module.Path
			break
		}
	}
	if modulePath == "" {
		return nil, fmt.Errorf("go list: no main-module package among %d listed packages", len(listed))
	}
	return typecheck(listed, modulePath)
}

// typecheck builds the Program from a deps-first package list: files
// are parsed on a worker pool, then packages type-check in
// dependency-parallel waves — every package whose imports finished in
// earlier waves checks concurrently with the rest of its wave. The
// waves give the driver its cold-start speed; per-package analysis
// fans out separately in RunPackages.
func typecheck(listed []*listPackage, modulePath string) (*Program, error) {
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		Packages:   map[string]*Package{},
	}
	var mu sync.Mutex // guards loadErrs and the fallback importer
	var loadErrs []string
	work := make([]*listPackage, 0, len(listed))
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			prog.Packages["unsafe"] = &Package{
				Path:     "unsafe",
				Standard: true,
				Types:    types.Unsafe,
			}
			continue
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error.Err))
			continue
		}
		work = append(work, lp)
	}

	// Parse every file of every package concurrently; token.FileSet is
	// safe for concurrent AddFile.
	pkgs := make(map[string]*Package, len(work))
	for _, lp := range work {
		inModule := lp.Module != nil && lp.Module.Main
		pkgs[lp.ImportPath] = &Package{
			Path:     lp.ImportPath,
			Dir:      lp.Dir,
			Standard: lp.Standard,
			InModule: inModule,
			Files:    make([]*ast.File, len(lp.GoFiles)),
			Imports:  lp.Imports,
		}
	}
	workers := max(1, runtime.GOMAXPROCS(0))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, lp := range work {
		pkg := pkgs[lp.ImportPath]
		for i, name := range lp.GoFiles {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, filename string, inModule bool) {
				defer wg.Done()
				defer func() { <-sem }()
				file, err := parser.ParseFile(prog.Fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil && inModule {
					mu.Lock()
					loadErrs = append(loadErrs, err.Error())
					mu.Unlock()
				}
				pkg.Files[i] = file // nil on parse error, compacted below
			}(i, filepath.Join(lp.Dir, name), pkg.InModule)
		}
	}
	wg.Wait()
	for _, lp := range work {
		pkg := pkgs[lp.ImportPath]
		files, names := pkg.Files, make([]string, 0, len(lp.GoFiles))
		pkg.Files = pkg.Files[:0]
		for i, f := range files {
			if f != nil {
				pkg.Files = append(pkg.Files, f)
				names = append(names, filepath.Join(lp.Dir, lp.GoFiles[i]))
			}
		}
		pkg.Filenames = names
	}

	// Wave-order the packages: a package's wave is one past its deepest
	// dependency, so every import is fully type-checked before the
	// package starts.
	depth := map[string]int{}
	var depthOf func(lp *listPackage) int
	byPath := map[string]*listPackage{}
	for _, lp := range work {
		byPath[lp.ImportPath] = lp
	}
	depthOf = func(lp *listPackage) int {
		if d, ok := depth[lp.ImportPath]; ok {
			return d
		}
		depth[lp.ImportPath] = 0 // cycle guard; go list output is acyclic
		d := 0
		for _, imp := range lp.Imports {
			if mapped, ok := lp.ImportMap[imp]; ok {
				imp = mapped
			}
			if dep, ok := byPath[imp]; ok {
				if dd := depthOf(dep) + 1; dd > d {
					d = dd
				}
			}
		}
		depth[lp.ImportPath] = d
		return d
	}
	maxDepth := 0
	for _, lp := range work {
		if d := depthOf(lp); d > maxDepth {
			maxDepth = d
		}
	}
	waves := make([][]*listPackage, maxDepth+1)
	for _, lp := range work {
		d := depth[lp.ImportPath]
		waves[d] = append(waves[d], lp)
	}

	fallback := importer.Default()
	for _, wave := range waves {
		var wwg sync.WaitGroup
		results := make([]*Package, len(wave))
		for i, lp := range wave {
			wwg.Add(1)
			sem <- struct{}{}
			go func(i int, lp *listPackage) {
				defer wwg.Done()
				defer func() { <-sem }()
				pkg := pkgs[lp.ImportPath]
				var typeErrs []string
				conf := types.Config{
					IgnoreFuncBodies: !pkg.InModule,
					FakeImportC:      true,
					Sizes:            types.SizesFor("gc", runtime.GOARCH),
					Importer: mapImporter{
						prog:       prog,
						importMap:  lp.ImportMap,
						fallback:   fallback,
						fallbackMu: &mu,
					},
					Error: func(err error) {
						typeErrs = append(typeErrs, err.Error())
					},
				}
				if pkg.InModule {
					pkg.Info = &types.Info{
						Types:      map[ast.Expr]types.TypeAndValue{},
						Defs:       map[*ast.Ident]types.Object{},
						Uses:       map[*ast.Ident]types.Object{},
						Selections: map[*ast.SelectorExpr]*types.Selection{},
						Implicits:  map[ast.Node]types.Object{},
						Scopes:     map[ast.Node]*types.Scope{},
					}
				}
				tpkg, _ := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
				pkg.Types = tpkg
				// Type errors in dependencies (vendored or GOROOT
				// quirks) are tolerated as long as the package's shape
				// loads; errors in the module itself are fatal —
				// analyzing a miscompiled tree would produce nonsense
				// findings.
				if pkg.InModule && len(typeErrs) > 0 {
					mu.Lock()
					loadErrs = append(loadErrs, typeErrs...)
					mu.Unlock()
				}
				results[i] = pkg
			}(i, lp)
		}
		wwg.Wait()
		// Publish the wave's results only after the barrier, so the map
		// is never written while a concurrent checker reads it.
		for _, pkg := range results {
			if pkg == nil {
				continue
			}
			prog.Packages[pkg.Path] = pkg
		}
	}
	// Module packages in the stable deps-first listing order.
	for _, lp := range work {
		if pkg := prog.Packages[lp.ImportPath]; pkg != nil && pkg.InModule {
			prog.Module = append(prog.Module, pkg)
		}
	}
	if len(loadErrs) > 0 {
		sort.Strings(loadErrs)
		const max = 10
		if len(loadErrs) > max {
			loadErrs = append(loadErrs[:max], fmt.Sprintf("... and %d more", len(loadErrs)-max))
		}
		return nil, fmt.Errorf("load errors:\n  %s", strings.Join(loadErrs, "\n  "))
	}
	prog.collectAnnotations()
	return prog, nil
}

// mapImporter resolves imports against the already-type-checked closure,
// honoring the package's ImportMap (vendored or otherwise rewritten
// import paths). Reads of prog.Packages are safe without locking: waves
// publish results only at their barrier, and a checker only imports
// packages from earlier waves.
type mapImporter struct {
	prog       *Program
	importMap  map[string]string
	fallback   types.Importer
	fallbackMu *sync.Mutex
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.prog.Packages[path]; ok && pkg.Types != nil {
		return pkg.Types, nil
	}
	// go list -deps is a deps-first traversal, so a miss here means the
	// import did not appear in the closure (e.g. implicit test deps).
	// Fall back to the compiler's export data rather than failing the
	// whole load; the shared fallback importer is not concurrency-safe,
	// hence the lock.
	if m.fallback == nil {
		return importer.Default().Import(path)
	}
	m.fallbackMu.Lock()
	defer m.fallbackMu.Unlock()
	return m.fallback.Import(path)
}
