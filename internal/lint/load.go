package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Module     *struct {
		Path string
		Main bool
	}
	Error *struct {
		Err string
	}
}

// LoadModule lists patterns (plus their full dependency closure) in dir
// via `go list -json -deps` and type-checks everything in dependency
// order: standard-library packages with IgnoreFuncBodies (only their
// exported shape matters), module packages fully, with ast and types
// info retained for analysis.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("go list -json: %w (%s)", err, stderr.String())
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %w (%s)", err, strings.TrimSpace(stderr.String()))
	}
	modulePath := ""
	for _, lp := range listed {
		if lp.Module != nil && lp.Module.Main {
			modulePath = lp.Module.Path
			break
		}
	}
	if modulePath == "" {
		return nil, fmt.Errorf("go list: no main-module package among %d listed packages", len(listed))
	}
	return typecheck(listed, modulePath)
}

// typecheck builds the Program from a deps-first package list.
func typecheck(listed []*listPackage, modulePath string) (*Program, error) {
	prog := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modulePath,
		Packages:   map[string]*Package{},
	}
	var loadErrs []string
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			prog.Packages["unsafe"] = &Package{
				Path:     "unsafe",
				Standard: true,
				Types:    types.Unsafe,
			}
			continue
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error.Err))
			continue
		}
		inModule := lp.Module != nil && lp.Module.Main
		pkg := &Package{
			Path:     lp.ImportPath,
			Dir:      lp.Dir,
			Standard: lp.Standard,
			InModule: inModule,
		}
		for _, name := range lp.GoFiles {
			filename := filepath.Join(lp.Dir, name)
			file, err := parser.ParseFile(prog.Fset, filename, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				if inModule {
					loadErrs = append(loadErrs, err.Error())
				}
				continue
			}
			pkg.Files = append(pkg.Files, file)
			pkg.Filenames = append(pkg.Filenames, filename)
		}
		var typeErrs []string
		conf := types.Config{
			IgnoreFuncBodies: !inModule,
			FakeImportC:      true,
			Sizes:            types.SizesFor("gc", runtime.GOARCH),
			Importer:         mapImporter{prog: prog, importMap: lp.ImportMap},
			Error: func(err error) {
				typeErrs = append(typeErrs, err.Error())
			},
		}
		if inModule {
			pkg.Info = &types.Info{
				Types:      map[ast.Expr]types.TypeAndValue{},
				Defs:       map[*ast.Ident]types.Object{},
				Uses:       map[*ast.Ident]types.Object{},
				Selections: map[*ast.SelectorExpr]*types.Selection{},
				Implicits:  map[ast.Node]types.Object{},
				Scopes:     map[ast.Node]*types.Scope{},
			}
		}
		tpkg, _ := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		pkg.Types = tpkg
		// Type errors in dependencies (vendored or GOROOT quirks) are
		// tolerated as long as the package's shape loads; errors in the
		// module itself are fatal — analyzing a miscompiled tree would
		// produce nonsense findings.
		if inModule && len(typeErrs) > 0 {
			loadErrs = append(loadErrs, typeErrs...)
		}
		prog.Packages[lp.ImportPath] = pkg
		if inModule {
			prog.Module = append(prog.Module, pkg)
		}
	}
	if len(loadErrs) > 0 {
		const max = 10
		if len(loadErrs) > max {
			loadErrs = append(loadErrs[:max], fmt.Sprintf("... and %d more", len(loadErrs)-max))
		}
		return nil, fmt.Errorf("load errors:\n  %s", strings.Join(loadErrs, "\n  "))
	}
	prog.collectAnnotations()
	return prog, nil
}

// mapImporter resolves imports against the already-type-checked closure,
// honoring the package's ImportMap (vendored or otherwise rewritten
// import paths).
type mapImporter struct {
	prog      *Program
	importMap map[string]string
}

func (m mapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.prog.Packages[path]; ok && pkg.Types != nil {
		return pkg.Types, nil
	}
	// go list -deps is a deps-first traversal, so a miss here means the
	// import did not appear in the closure (e.g. implicit test deps).
	// Fall back to the compiler's export data rather than failing the
	// whole load.
	return importer.Default().Import(path)
}
