package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathAlloc guards the zero-allocation contact path established in
// PR 4. Functions carrying a //bsub:hotpath directive must not contain
// allocating constructs — fmt calls, string concatenation or
// string<->[]byte conversions, closures that capture variables, map or
// slice literals, bare make, boxing into interfaces — and may only call
// other hotpath-marked functions, //bsub:coldpath-marked escape hatches,
// or functions from a small allowlist of non-allocating stdlib packages.
//
// Two idioms are deliberately exempt, mirroring how the real hot path is
// written: allocations inside a return statement's subtree (error
// returns are cold: the contact is already failing), and make inside an
// append argument list (amortized arena growth).
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//bsub:hotpath functions must not allocate and may only call hotpath or allowlisted functions",
	Run:  runHotpathAlloc,
}

// hotpathAllowedPkgs are stdlib packages whose functions are
// non-allocating value computations, safe from a hot function.
var hotpathAllowedPkgs = map[string]bool{
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
	"sort":            true,
	"slices":          true,
	"time":            true, // Duration arithmetic; time.Now is determinism's job
	"errors":          true, // errors.Is on sentinel errors
}

func runHotpathAlloc(pass *Pass) {
	info := pass.Pkg.Info
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		obj := info.Defs[fd.Name]
		if obj == nil || !pass.Prog.Hotpath[obj] {
			return
		}
		checkHotBody(pass, fd.Body)
	})
}

func checkHotBody(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	// Return statements are cold exits (error paths); collect their
	// spans so allocations inside them are exempt.
	var returns []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r)
		}
		return true
	})
	inReturn := func(pos token.Pos) bool {
		for _, r := range returns {
			if r.Pos() <= pos && pos <= r.End() {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n, inReturn)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !inReturn(n.Pos()) {
				if tv, ok := info.Types[n]; ok && isStringType(tv.Type) {
					pass.Reportf(n.Pos(), "string concatenation allocates in a hotpath function")
				}
			}
		case *ast.FuncLit:
			if !inReturn(n.Pos()) && capturesVariables(info, n) {
				pass.Reportf(n.Pos(), "closure captures variables and allocates in a hotpath function")
			}
			return false // the literal body runs elsewhere; don't double-report
		case *ast.CompositeLit:
			if inReturn(n.Pos()) {
				return true
			}
			if tv, ok := info.Types[n]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					pass.Reportf(n.Pos(), "map literal allocates in a hotpath function")
				case *types.Slice:
					pass.Reportf(n.Pos(), "slice literal allocates in a hotpath function")
				}
			}
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, inReturn func(token.Pos) bool) {
	info := pass.Pkg.Info
	cold := inReturn(call.Pos())

	// Conversions: string([]byte) and []byte(string) copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 && !cold {
		to := tv.Type
		if from, ok := info.Types[call.Args[0]]; ok {
			if isStringType(to) && isByteSlice(from.Type) {
				pass.Reportf(call.Pos(), "[]byte-to-string conversion allocates in a hotpath function")
			}
			if isByteSlice(to) && isStringType(from.Type) {
				pass.Reportf(call.Pos(), "string-to-[]byte conversion allocates in a hotpath function")
			}
		}
		return
	}

	// Builtins: make outside an append argument is an allocation; append
	// itself and len/cap/copy/delete are the hot path's bread and butter.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				if !cold && !makeInsideAppend(pass, call) {
					pass.Reportf(call.Pos(), "make allocates in a hotpath function; preallocate in the arena or mark the grow path //bsub:coldpath")
				}
			case "new":
				if !cold {
					pass.Reportf(call.Pos(), "new allocates in a hotpath function")
				}
			}
			return
		}
	}

	fn := calleeOf(info, call)
	if fn == nil {
		// Dynamic, interface, or builtin call: budget hooks and
		// io.Writer-style indirection are part of the engine's design;
		// their implementations are checked where they are defined.
		return
	}
	path := pkgPathOf(fn)
	if path == "fmt" && !cold {
		pass.Reportf(call.Pos(), "hotpath function calls fmt.%s, which allocates", fn.Name())
		return
	}
	if path == pass.Prog.ModulePath || strings.HasPrefix(path, pass.Prog.ModulePath+"/") {
		// Module-internal callee: must itself be hotpath or an explicit
		// coldpath escape hatch.
		if pass.Prog.Hotpath[fn] || pass.Prog.Coldpath[fn] {
			return
		}
		pass.Reportf(call.Pos(), "hotpath function calls %s, which is not marked //bsub:hotpath or //bsub:coldpath", fn.Name())
		return
	}
	if hotpathAllowedPkgs[path] || path == "" || path == "fmt" {
		return
	}
	if !cold {
		pass.Reportf(call.Pos(), "hotpath function calls %s.%s, which is not on the allowlist", path, fn.Name())
	}
}

// makeInsideAppend reports whether call (a make) appears in the argument
// list of an append call — the amortized arena-growth idiom
// `append(chunks, make([]T, n))`.
func makeInsideAppend(pass *Pass, call *ast.CallExpr) bool {
	found := false
	for _, file := range pass.Pkg.Files {
		if file.Pos() <= call.Pos() && call.Pos() <= file.End() {
			ast.Inspect(file, func(n ast.Node) bool {
				outer, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				if id, ok := ast.Unparen(outer.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
						for _, a := range outer.Args {
							if a.Pos() <= call.Pos() && call.Pos() <= a.End() {
								found = true
							}
						}
					}
				}
				return !found
			})
			break
		}
	}
	return found
}

// capturesVariables reports whether the closure references any object
// declared outside itself (forcing a heap-allocated closure context).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if obj.Pos() != token.NoPos && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
			// Package-level vars are static, not captured.
			if obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
				return true
			}
			captured = true
		}
		return true
	})
	return captured
}

func isStringType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}
