package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// calleeOf resolves the statically known callee of a call expression:
// a package-level function, a method on a concrete receiver, or a
// qualified import (pkg.Fn). Returns nil for builtins, dynamic calls
// through function values, interface method calls, and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no body to follow and are
				// dynamic; report them as unresolved.
				if types.IsInterface(sel.Recv()) {
					return nil
				}
				return fn
			}
			return nil
		}
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// pkgPathOf returns the import path of the package defining fn, or ""
// for builtins and universe-scope functions (error.Error).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// namedOf unwraps pointers and returns the named type beneath t, if any.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named
		}
	}
	return nil
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type name declared in a package whose path's last element is pkgElem.
// Matching by trailing path element keeps the analyzers working both on
// the real tree (bsub/internal/engine) and on fixture stubs that mirror
// the layout under a different module root.
func isNamedType(t types.Type, pkgElem, name string) bool {
	named := namedOf(t)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Name() != name {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == pkgElem || strings.HasSuffix(path, "/"+pkgElem)
}

// recvNamed returns the named type of fn's receiver, or nil for
// plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// funcBodies yields every function or method declaration with a body in
// the package, plus the declaration it came from.
func funcBodies(pkg *Package, fn func(decl *ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}

// returnsError reports whether any result of the call's callee type is
// the builtin error interface.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	check := func(t types.Type) bool {
		return t != nil && t.String() == "error"
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if check(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return check(tv.Type)
}

// hasSuffixElem reports whether rel equals elem or ends with "/"+elem —
// used to scope analyzers to internal/<elem> regardless of nesting.
func hasSuffixElem(rel, elem string) bool {
	return rel == elem || strings.HasSuffix(rel, "/"+elem)
}

// underAny reports whether rel is one of the listed package paths or
// lives underneath one of them ("internal/mesh/worker" is under
// "internal/mesh"; "internal/meshier" is not). The suffix form keeps
// fixture trees that mirror the layout under another root in scope.
func underAny(rel string, pkgs ...string) bool {
	for _, p := range pkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") ||
			strings.HasSuffix(rel, "/"+p) || strings.Contains(rel+"/", "/"+p+"/") {
			return true
		}
	}
	return false
}

// resolveObj resolves the object an identifier or field selector refers
// to: the local variable for `wg`, the field for `n.wg` or `w.m.wg`.
// Returns nil for anything else (calls, index expressions, ...).
func resolveObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return obj
		}
		return info.Defs[e]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			return sel.Obj()
		}
		return info.Uses[e.Sel]
	}
	return nil
}

// syncCallee reports whether call is method `name` on the named sync
// type (Mutex, RWMutex, WaitGroup, ...), returning the receiver
// expression for identity resolution.
func syncCallee(info *types.Info, call *ast.CallExpr, typeName ...string) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	fn := calleeOf(info, call)
	if fn == nil || pkgPathOf(fn) != "sync" {
		return nil, "", false
	}
	named := recvNamed(fn)
	if named == nil {
		return nil, "", false
	}
	for _, tn := range typeName {
		if named.Obj().Name() == tn {
			return sel.X, fn.Name(), true
		}
	}
	return nil, "", false
}
