package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// The findings cache makes `make lint-fast` incremental: a run stores,
// per module package, the post-suppression findings keyed by a content
// hash over the package's files and the keys of its module-internal
// dependencies (so an edit anywhere in the transitive closure — new
// code, a changed //bsub:hotpath or //bsub:lockrank annotation, a
// widened Applies scope via the analyzer list — invalidates every
// dependent). On a warm run with nothing changed, TryCache re-derives
// every key from the file contents alone and replays the stored
// findings without invoking `go list` or the type checker at all,
// which is where the ≥3× cold-to-warm speedup comes from.
//
// Soundness rests on two facts. First, every analyzer is package-local:
// it reads its own package's syntax plus type information and
// program-wide annotation maps, and annotations only flow from packages
// in the analyzed package's import closure — all covered by the chained
// key. Second, suppression matching is per-file (a //lint:ignore
// directive only silences findings in its own file), so per-package
// post-suppression results compose into exactly the whole-module
// result.

// cacheVersion invalidates every entry when the cache layout or any
// analyzer's semantics change. Bump it when an analyzer's rules are
// modified without its name changing.
const cacheVersion = 1

type manifest struct {
	Version    int
	GoVersion  string
	Analyzers  string // comma-joined, order-sensitive
	ModulePath string
	Packages   []manifestPkg // deps-first order
}

type manifestPkg struct {
	Path  string
	Dir   string            // relative to the module root, slash-separated
	Files map[string]string // every non-test .go file in Dir: name -> sha256
	Deps  []string          // module-internal imports, sorted
	Std   []string          // imports outside the module, sorted
	Key   string
}

// cachedFindings is one package's stored result.
type cachedFindings struct {
	Findings   []Diagnostic
	Suppressed int
}

// CachedRun is a full-module result replayed from the cache.
type CachedRun struct {
	Findings   []Diagnostic // relativized to the module root
	Suppressed int
}

func analyzerKey(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// scanPackageDir inventories every non-test .go file in dir with its
// content hash. The inventory deliberately includes files excluded by
// build constraints: hashing a superset can only over-invalidate,
// never under-invalidate.
func scanPackageDir(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := map[string]string{}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(data)
		files[name] = hex.EncodeToString(sum[:])
	}
	return files, nil
}

// packageKey chains a package's content hash with its dependencies'.
func packageKey(m *manifest, mp *manifestPkg, depKey map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\x00%s\x00%s\x00%s\x00", m.Version, m.GoVersion, m.Analyzers, mp.Path)
	names := make([]string, 0, len(mp.Files))
	for name := range mp.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "f%s\x00%s\x00", name, mp.Files[name])
	}
	for _, std := range mp.Std {
		fmt.Fprintf(h, "s%s\x00", std)
	}
	for _, dep := range mp.Deps {
		fmt.Fprintf(h, "d%s\x00%s\x00", dep, depKey[dep])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// moduleGoDirs walks the module tree collecting every directory that
// holds .go files and that `go list ./...` would visit: testdata,
// hidden and underscore directories are skipped, as are nested modules.
// The warm path compares this set against the manifest so a package
// added since the last cold run — one nobody imports yet — still
// forces a miss instead of silently escaping analysis.
func moduleGoDirs(root string) (map[string]bool, error) {
	dirs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root {
				if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
					return filepath.SkipDir
				}
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				return err
			}
			dirs[filepath.ToSlash(rel)] = true
		}
		return nil
	})
	return dirs, err
}

func manifestPath(cacheDir string) string {
	return filepath.Join(cacheDir, "manifest.json")
}

func findingsPath(cacheDir, key string) string {
	return filepath.Join(cacheDir, key+".json")
}

// TryCache attempts the warm path: validate the stored manifest against
// the current tree by re-hashing file contents, and replay the stored
// findings when every package's key matches. Returns ok=false on any
// miss — new or vanished packages, changed files, a different analyzer
// set, or a different toolchain — in which case the caller falls back
// to the full load-and-analyze path.
func TryCache(dir, cacheDir string, analyzers []*Analyzer) (*CachedRun, bool) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(manifestPath(cacheDir))
	if err != nil {
		return nil, false
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, false
	}
	if m.Version != cacheVersion || m.GoVersion != runtime.Version() || m.Analyzers != analyzerKey(analyzers) {
		return nil, false
	}
	current, err := moduleGoDirs(root)
	if err != nil {
		return nil, false
	}
	if len(current) != len(m.Packages) {
		return nil, false
	}
	for _, mp := range m.Packages {
		if !current[mp.Dir] {
			return nil, false
		}
	}

	depKey := map[string]string{}
	run := &CachedRun{}
	for i := range m.Packages {
		mp := &m.Packages[i]
		files, err := scanPackageDir(filepath.Join(root, filepath.FromSlash(mp.Dir)))
		if err != nil || len(files) != len(mp.Files) {
			return nil, false
		}
		for name, hash := range mp.Files {
			if files[name] != hash {
				return nil, false
			}
		}
		key := packageKey(&m, mp, depKey)
		if key != mp.Key {
			return nil, false
		}
		depKey[mp.Path] = key
		fdata, err := os.ReadFile(findingsPath(cacheDir, key))
		if err != nil {
			return nil, false
		}
		var cf cachedFindings
		if err := json.Unmarshal(fdata, &cf); err != nil {
			return nil, false
		}
		run.Findings = append(run.Findings, cf.Findings...)
		run.Suppressed += cf.Suppressed
	}
	sortDiagnostics(run.Findings)
	return run, true
}

// WriteCache stores a cold run's per-package results and the manifest
// that makes the next warm run replayable. Findings are stored with
// module-relative paths so replay output is byte-identical to a cold
// run's relativized output. Errors are returned, not fatal: a failed
// cache write leaves the findings themselves intact.
func WriteCache(dir, cacheDir string, prog *Program, results []*PackageResult, analyzers []*Analyzer) error {
	root, err := filepath.Abs(dir)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return err
	}
	m := manifest{
		Version:    cacheVersion,
		GoVersion:  runtime.Version(),
		Analyzers:  analyzerKey(analyzers),
		ModulePath: prog.ModulePath,
	}
	inModule := map[string]bool{}
	for _, pkg := range prog.Module {
		inModule[pkg.Path] = true
	}
	depKey := map[string]string{}
	for _, res := range results {
		pkg := res.Pkg
		relDir, err := filepath.Rel(root, pkg.Dir)
		if err != nil || strings.HasPrefix(relDir, "..") {
			return fmt.Errorf("package %s outside module root %s", pkg.Path, root)
		}
		files, err := scanPackageDir(pkg.Dir)
		if err != nil {
			return err
		}
		mp := manifestPkg{
			Path:  pkg.Path,
			Dir:   filepath.ToSlash(relDir),
			Files: files,
		}
		for _, imp := range pkg.Imports {
			if inModule[imp] {
				mp.Deps = append(mp.Deps, imp)
			} else {
				mp.Std = append(mp.Std, imp)
			}
		}
		sort.Strings(mp.Deps)
		sort.Strings(mp.Std)
		mp.Key = packageKey(&m, &mp, depKey)
		depKey[pkg.Path] = mp.Key
		m.Packages = append(m.Packages, mp)

		cf := cachedFindings{Suppressed: res.Suppressed}
		cf.Findings = append(cf.Findings, res.Findings...)
		Relativize(dir, cf.Findings)
		fdata, err := json.Marshal(&cf)
		if err != nil {
			return err
		}
		if err := os.WriteFile(findingsPath(cacheDir, mp.Key), fdata, 0o644); err != nil {
			return err
		}
	}
	mdata, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(manifestPath(cacheDir), mdata, 0o644)
}
