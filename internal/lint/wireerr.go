package lint

import (
	"go/ast"
	"go/types"
)

// WireErr forbids silently dropped errors in the wire-facing packages:
// in internal/livenode, internal/tcbf, internal/mesh, internal/filter,
// and internal/bloofi, any call whose result set includes an error must
// have that error checked or explicitly discarded with `_ =`. A frame
// write that fails and goes unnoticed is how a severed contact turns
// into a lost copy; the explicit-discard form documents that the drop
// is intentional (e.g. the best-effort BUSY frame, the advisory flood
// contact).
var WireErr = &Analyzer{
	Name: "wireerr",
	Doc:  "errors from frame/codec writes must be checked or explicitly discarded",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/livenode", "internal/tcbf",
			"internal/mesh", "internal/filter", "internal/bloofi")
	},
	Run: runWireErr,
}

func runWireErr(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if returnsError(info, call) {
				pass.Reportf(call.Pos(), "unchecked error from %s; handle it or discard it with _ =", callName(info, call))
			}
			return true
		})
	}
}

// callName renders a short, stable name for the called function.
func callName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeOf(info, call); fn != nil {
		return fn.Name()
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "call"
}
