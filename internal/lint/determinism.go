package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism keeps the replayable core replayable: internal/engine,
// internal/tcbf, internal/filter, internal/bloofi, internal/core,
// internal/trace* (the tracegen pair streams included),
// internal/workload, internal/sim, internal/metrics,
// and internal/xrand must not read wall clocks (time.Now and friends —
// time is threaded explicitly as a parameter everywhere), must not draw
// from the global math/rand state (seeded *rand.Rand generators are
// fine), and must not iterate a map where the body's effects are
// order-sensitive: appending to an outer slice that is not subsequently
// sorted, accumulating floating-point sums, or feeding keys into a
// filter/wire buffer whose state depends on insertion order. The sharded
// runner's byte-identical-at-any-worker-count guarantee (DESIGN.md §11)
// rests on exactly these properties: a map-ordered merge or an ambient
// RNG in a stream would shift results between runs, not just between
// worker counts.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "deterministic packages must not use wall clocks, global rand, or order-sensitive map iteration",
	Applies: func(rel string) bool {
		for _, scoped := range []string{
			"internal/engine", "internal/tcbf", "internal/core",
			"internal/sim", "internal/workload", "internal/metrics", "internal/xrand",
			"internal/filter", "internal/bloofi",
		} {
			if rel == scoped || strings.HasPrefix(rel, scoped+"/") {
				return true
			}
		}
		return strings.HasPrefix(rel, "internal/trace")
	},
	Run: runDeterminism,
}

// wallClockFuncs are the time package's ambient-state readers.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runDeterminism(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(info, call)
			if fn == nil {
				return true
			}
			switch pkgPathOf(fn) {
			case "time":
				if wallClockFuncs[fn.Name()] {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock; thread the simulation clock explicitly", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				// Package-level functions draw from the shared global
				// source; constructors (New, NewSource) build seeded
				// generators and are fine, as are methods on *rand.Rand.
				if recvNamed(fn) == nil && !strings.HasPrefix(fn.Name(), "New") {
					pass.Reportf(call.Pos(), "global math/rand.%s is seeded from runtime state; use a seeded *rand.Rand", fn.Name())
				}
			}
			return true
		})
	}
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		checkMapRanges(pass, fd)
	})
}

// checkMapRanges flags range-over-map loops whose bodies have
// order-sensitive effects.
func checkMapRanges(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, fd, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	info := pass.Pkg.Info
	// Loop-local means declared anywhere in the range statement,
	// including the key/value variables in the range clause itself.
	inBody := func(pos token.Pos) bool {
		return rng.Pos() <= pos && pos <= rng.Body.End()
	}
	outerObj := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil || obj.Pos() == token.NoPos || inBody(obj.Pos()) {
			return nil
		}
		return obj
	}
	// sinkObj resolves an assignment target that outlives the loop: a
	// plain identifier, or a field selector on an outer value (the shard
	// merge's total.delays shape). Fields resolve to the field object, so
	// a later sort of the same field counts as settling the order.
	sinkObj := func(expr ast.Expr) (types.Object, string) {
		switch lhs := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return outerObj(lhs), lhs.Name
		case *ast.SelectorExpr:
			base, ok := ast.Unparen(lhs.X).(*ast.Ident)
			if !ok || outerObj(base) == nil {
				return nil, ""
			}
			return info.Uses[lhs.Sel], base.Name + "." + lhs.Sel.Name
		}
		return nil, ""
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v = append(v, ...) where v outlives the loop and is never
			// sorted afterwards: the slice order is the map order.
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for i, rhs := range n.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					id, ok := ast.Unparen(call.Fun).(*ast.Ident)
					if !ok || id.Name != "append" {
						continue
					}
					if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
						continue
					}
					if i >= len(n.Lhs) {
						continue
					}
					obj, name := sinkObj(n.Lhs[i])
					if obj == nil {
						continue
					}
					if !sortedAfter(pass, fd, rng, obj) {
						pass.Reportf(n.Pos(), "append to %s inside a map range leaks iteration order; sort the result or iterate sorted keys", name)
					}
				}
			}
			// Floating-point accumulation: x += f is order-sensitive in
			// float arithmetic.
			if n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN {
				for _, lhs := range n.Lhs {
					obj, name := sinkObj(lhs)
					if obj == nil {
						continue
					}
					if basic, ok := obj.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
						pass.Reportf(n.Pos(), "floating-point accumulation into %s inside a map range is order-sensitive", name)
					}
				}
			}
		case *ast.CallExpr:
			// Feeding map-ordered keys into a counting filter: AMerge
			// saturates and Insert decays, so insertion order shows in
			// the counters.
			fn := calleeOf(info, n)
			if fn == nil {
				return true
			}
			if named := recvNamed(fn); named != nil && isNamedType(named, "tcbf", named.Obj().Name()) {
				switch fn.Name() {
				case "Insert", "InsertPre", "InsertAll", "InsertAllPre", "AMerge", "MMerge":
					pass.Reportf(n.Pos(), "%s.%s inside a map range makes filter state depend on iteration order", named.Obj().Name(), fn.Name())
				}
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort call later in the
// same function (after the range loop ends) — the append-then-sort
// idiom is deterministic.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.Pkg.Info
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || call.Pos() < rng.End() {
			return !sorted
		}
		fn := calleeOf(info, call)
		if fn == nil {
			return true
		}
		path := pkgPathOf(fn)
		if path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			switch a := ast.Unparen(arg).(type) {
			case *ast.Ident:
				if info.Uses[a] == obj {
					sorted = true
				}
			case *ast.SelectorExpr:
				if info.Uses[a.Sel] == obj {
					sorted = true
				}
			}
		}
		return !sorted
	})
	return sorted
}
