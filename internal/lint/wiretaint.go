package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WireTaint tracks wire-derived integers from extraction to use: a
// value produced by a multi-byte binary.BigEndian/LittleEndian read is
// tainted, taint propagates through conversions, arithmetic, and
// assignment, and using a tainted value as a make size or capacity, a
// slice/array index, a slice-expression bound, or a loop bound is a
// finding — unless the value first passes through recognized
// validation: an explicit comparison against a bound (if-condition or
// switch), a min/max clamp, or a Validate call. This is the exact bug
// class the repo has shipped three times (zero counter bytes and NaN
// uniform decode in PR 6, silent m>2^32 truncation in PR 9): a decoder
// trusting a length field before checking it.
//
// The analysis is function-local and source-ordered, with branch-copied
// taint state, matching where the historical bugs lived: inside the
// decoder that performed the extraction. Single-byte reads (b[i],
// int(b[0])) are bounded by 255 and never tainted, which keeps count
// bytes and version switches quiet.
var WireTaint = &Analyzer{
	Name: "wiretaint",
	Doc:  "wire-derived lengths must be validated before sizing allocations, indexing, or bounding loops",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/livenode", "internal/mesh",
			"internal/tcbf", "internal/filter", "internal/bloofi")
	},
	Run: runWireTaint,
}

// wireReadFuncs are the encoding/binary extractors whose results carry
// taint. PutUintNN and single-byte loads do not produce attacker-sized
// integers.
var wireReadFuncs = map[string]bool{
	"Uint16": true,
	"Uint32": true,
	"Uint64": true,
}

// smallConversions bounds a conversion result tightly enough to clear
// taint.
var smallConversions = map[string]bool{
	"byte": true, "uint8": true, "int8": true, "bool": true,
}

type wtChecker struct {
	pass *Pass
	info *types.Info
}

func runWireTaint(pass *Pass) {
	c := &wtChecker{pass: pass, info: pass.Pkg.Info}
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		c.walkStmts(fd.Body.List, map[string]token.Pos{})
		// Closures get their own clean slate: they execute later, and
		// the historical bugs were all in straight-line decoders.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.walkStmts(lit.Body.List, map[string]token.Pos{})
				return false
			}
			return true
		})
	})
}

// taintKey canonicalizes a taintable expression — an identifier or a
// field selector chain — to its rendered form. Returns "" for
// everything else.
func taintKey(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base := taintKey(e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	}
	return ""
}

// isWireRead reports whether call extracts a multi-byte integer from
// the wire.
func (c *wtChecker) isWireRead(call *ast.CallExpr) bool {
	fn := calleeOf(c.info, call)
	return fn != nil && pkgPathOf(fn) == "encoding/binary" && wireReadFuncs[fn.Name()]
}

// isConversion reports whether call is a type conversion, and to what
// type name.
func (c *wtChecker) isConversion(call *ast.CallExpr) (string, bool) {
	tv, ok := c.info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return "", false
	}
	return tv.Type.String(), true
}

// tainted reports whether evaluating e yields a wire-derived integer
// under the current taint set.
func (c *wtChecker) tainted(e ast.Expr, taint map[string]token.Pos) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if key := taintKey(e); key != "" {
			_, ok := taint[key]
			return ok
		}
	case *ast.CallExpr:
		if c.isWireRead(e) {
			return true
		}
		if name, ok := c.isConversion(e); ok && len(e.Args) == 1 {
			if smallConversions[name] {
				return false
			}
			return c.tainted(e.Args[0], taint)
		}
		// min/max clamps against a constant bound sanitize; all other
		// call results are trusted (function-local analysis).
		return false
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
			return c.tainted(e.X, taint) || c.tainted(e.Y, taint)
		}
		return false
	case *ast.UnaryExpr:
		return c.tainted(e.X, taint)
	}
	return false
}

// render names an expression for a finding message.
func render(e ast.Expr) string {
	return types.ExprString(ast.Unparen(e))
}

// checkSinks scans an expression tree for tainted values reaching a
// sink: make sizes, indexes, and slice bounds. Closure bodies are
// walked separately.
func (c *wtChecker) checkSinks(e ast.Expr, taint map[string]token.Pos) {
	if e == nil || len(taint) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "make" {
				if _, isBuiltin := c.info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range n.Args[1:] {
						if c.tainted(arg, taint) {
							c.pass.Reportf(arg.Pos(), "wire-derived length %s used as make size without validation", render(arg))
						}
					}
				}
			}
		case *ast.IndexExpr:
			if c.tainted(n.Index, taint) && c.indexable(n.X) {
				c.pass.Reportf(n.Index.Pos(), "wire-derived index %s used without bounds validation", render(n.Index))
			}
		case *ast.SliceExpr:
			for _, bound := range []ast.Expr{n.Low, n.High, n.Max} {
				if bound != nil && c.tainted(bound, taint) {
					c.pass.Reportf(bound.Pos(), "wire-derived slice bound %s used without validation", render(bound))
				}
			}
		}
		return true
	})
}

// indexable reports whether e is a slice, array, or string — the types
// where an oversized index panics.
func (c *wtChecker) indexable(e ast.Expr) bool {
	tv, ok := c.info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Basic:
		if b, ok := t.(*types.Basic); ok && b.Info()&types.IsString == 0 {
			return false
		}
		return true
	case *types.Pointer:
		_, isArray := t.Elem().Underlying().(*types.Array)
		return isArray
	}
	return false
}

// sanitizeComparisons removes taint from every key that appears as an
// operand of a comparison in e — the recognized "explicit comparison
// against a bound" validation.
func (c *wtChecker) sanitizeComparisons(e ast.Expr, taint map[string]token.Pos) {
	if e == nil || len(taint) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			for _, operand := range []ast.Expr{be.X, be.Y} {
				c.sanitizeExpr(operand, taint)
			}
		}
		return true
	})
}

// sanitizeExpr clears the taint keys mentioned in a compared or
// validated expression (the comparison may wrap the key in a
// conversion or arithmetic: `if uint64(n)*8 > limit`).
func (c *wtChecker) sanitizeExpr(e ast.Expr, taint map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		if ne, ok := n.(ast.Expr); ok {
			if key := taintKey(ne); key != "" {
				delete(taint, key)
				return false
			}
		}
		return true
	})
}

// sanitizeValidateCalls clears arguments passed to Validate-style
// functions anywhere in e.
func (c *wtChecker) sanitizeValidateCalls(e ast.Expr, taint map[string]token.Pos) {
	if e == nil || len(taint) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := callName(c.info, call)
		if len(name) >= 5 && (name[:5] == "Valid" || name[:5] == "valid") {
			for _, arg := range call.Args {
				c.sanitizeExpr(arg, taint)
			}
		}
		return true
	})
}

func copyTaint(taint map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(taint))
	for k, v := range taint {
		out[k] = v
	}
	return out
}

func (c *wtChecker) walkStmts(list []ast.Stmt, taint map[string]token.Pos) {
	for _, s := range list {
		c.walkStmt(s, taint)
	}
}

// checkAndSanitize is the per-statement expression pass: sinks are
// checked against the pre-statement taint, then Validate calls clear
// their arguments.
func (c *wtChecker) checkAndSanitize(e ast.Expr, taint map[string]token.Pos) {
	c.checkSinks(e, taint)
	c.sanitizeValidateCalls(e, taint)
}

func (c *wtChecker) walkStmt(s ast.Stmt, taint map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkAndSanitize(e, taint)
		}
		for _, e := range s.Lhs {
			c.checkAndSanitize(e, taint)
		}
		if s.Tok == token.ASSIGN || s.Tok == token.DEFINE {
			if len(s.Lhs) == len(s.Rhs) {
				for i, lhs := range s.Lhs {
					key := taintKey(lhs)
					if key == "" {
						continue
					}
					if c.tainted(s.Rhs[i], taint) {
						taint[key] = s.Rhs[i].Pos()
					} else {
						delete(taint, key)
					}
				}
			} else {
				// Multi-value assignment from a call: results are
				// trusted (function-local analysis).
				for _, lhs := range s.Lhs {
					if key := taintKey(lhs); key != "" {
						delete(taint, key)
					}
				}
			}
		} else {
			// Compound assignment (+=, <<=, ...): taint accumulates.
			for i, lhs := range s.Lhs {
				key := taintKey(lhs)
				if key == "" {
					continue
				}
				if c.tainted(s.Rhs[i], taint) {
					taint[key] = s.Rhs[i].Pos()
				}
			}
		}
	case *ast.ExprStmt:
		c.checkAndSanitize(s.X, taint)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					c.checkAndSanitize(v, taint)
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && c.tainted(vs.Values[i], taint) {
						taint[name.Name] = name.Pos()
					} else {
						delete(taint, name.Name)
					}
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, taint)
		}
		// Sinks inside the condition (a tainted index in `if b[i] == 0`)
		// fire first; then the comparison itself counts as the bound
		// check, for the branch and the continuation alike.
		c.checkAndSanitize(s.Cond, taint)
		c.sanitizeComparisons(s.Cond, taint)
		c.walkStmts(s.Body.List, copyTaint(taint))
		if s.Else != nil {
			c.walkStmt(s.Else, copyTaint(taint))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, taint)
		}
		if s.Cond != nil {
			// A tainted operand in the loop condition is the bound
			// itself — a sink, not a guard.
			c.checkSinks(s.Cond, taint)
			c.reportLoopBound(s.Cond, taint)
		}
		inner := copyTaint(taint)
		c.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			c.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.checkAndSanitize(s.X, taint)
		// go1.22 range-over-int: `for range n` with a wire-derived n is
		// a tainted loop bound.
		if tv, ok := c.info.Types[s.X]; ok && tv.Type != nil {
			if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsInteger != 0 {
				if c.tainted(s.X, taint) {
					c.pass.Reportf(s.X.Pos(), "wire-derived value %s used as loop bound without validation", render(s.X))
				}
			}
		}
		c.walkStmts(s.Body.List, copyTaint(taint))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, taint)
		}
		if s.Tag != nil {
			c.checkAndSanitize(s.Tag, taint)
			// Switching on the value enumerates it: validation.
			c.sanitizeExpr(s.Tag, taint)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					c.checkAndSanitize(e, taint)
				}
				c.walkStmts(cc.Body, copyTaint(taint))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyTaint(taint))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				inner := copyTaint(taint)
				if cc.Comm != nil {
					c.walkStmt(cc.Comm, inner)
				}
				c.walkStmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, taint)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, taint)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkAndSanitize(e, taint)
		}
	case *ast.SendStmt:
		c.checkAndSanitize(s.Chan, taint)
		c.checkAndSanitize(s.Value, taint)
	case *ast.IncDecStmt:
		c.checkAndSanitize(s.X, taint)
	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		for _, a := range call.Args {
			c.checkAndSanitize(a, taint)
		}
	}
}

// reportLoopBound flags tainted operands of the loop condition.
func (c *wtChecker) reportLoopBound(cond ast.Expr, taint map[string]token.Pos) {
	if len(taint) == 0 {
		return
	}
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch be.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
		for _, operand := range []ast.Expr{be.X, be.Y} {
			if c.tainted(operand, taint) {
				c.pass.Reportf(operand.Pos(), "wire-derived value %s used as loop bound without validation", render(operand))
				// One report per loop; the bound then counts as seen.
				c.sanitizeExpr(operand, taint)
			}
		}
	}
}
