// Package time is a hermetic stand-in for the real time package.
package time

type Time struct{}

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return 0 }

func Sleep(d Duration) {}
