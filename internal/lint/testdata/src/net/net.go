// Package net is a hermetic stand-in for the real net package.
package net

import "time"

type Conn interface {
	Read(b []byte) (int, error)
	Write(b []byte) (int, error)
	Close() error
	SetDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

func Dial(network, address string) (Conn, error) { return nil, nil }
