// Package binary is a hermetic stand-in for encoding/binary: just the
// byte-order readers and writers the wire codecs (and the wiretaint
// analyzer) care about.
package binary

type byteOrder struct{}

var (
	BigEndian    byteOrder
	LittleEndian byteOrder
)

func (byteOrder) Uint16(b []byte) uint16 { return 0 }
func (byteOrder) Uint32(b []byte) uint32 { return 0 }
func (byteOrder) Uint64(b []byte) uint64 { return 0 }

func (byteOrder) PutUint16(b []byte, v uint16) {}
func (byteOrder) PutUint32(b []byte, v uint32) {}
func (byteOrder) PutUint64(b []byte, v uint64) {}
