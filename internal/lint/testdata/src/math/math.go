// Package math is a hermetic stand-in for the real math package.
package math

func Max(x, y float64) float64 {
	if x > y {
		return x
	}
	return y
}
