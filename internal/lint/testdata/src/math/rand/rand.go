// Package rand is a hermetic stand-in for the real math/rand package.
package rand

type Source struct{}

func NewSource(seed int64) *Source { return &Source{} }

type Rand struct{}

func New(src *Source) *Rand { return &Rand{} }

func (r *Rand) Intn(n int) int { return 0 }

func (r *Rand) ExpFloat64() float64 { return 0 }

func Intn(n int) int { return 0 }

func ExpFloat64() float64 { return 0 }
