// Package fmt is a hermetic stand-in for the real fmt: analyzer fixtures
// only need the package path and signatures, never the behavior.
package fmt

func Sprintf(format string, args ...any) string { return format }

func Errorf(format string, args ...any) error { return nil }

func Println(args ...any) (int, error) { return 0, nil }
