// Package sort is a hermetic stand-in for the real sort package.
package sort

func Ints(x []int) {}

func Slice(x any, less func(i, j int) bool) {}
