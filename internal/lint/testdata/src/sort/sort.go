// Package sort is a hermetic stand-in for the real sort package.
package sort

func Ints(x []int) {}
