// Package mesh exercises the lockio analyzer over the mesh daemon's
// idioms: the event loop must collect targets under the membership lock
// and enqueue after releasing it, and worker queues must never see a
// channel op while a lock is held.
package mesh

import (
	"sync"
	"time"
)

type worker struct {
	mu    sync.Mutex
	jobs  chan int
	queue []int
	depth int
}

// enqueueChannelUnderLock is the forbidden shape: a send is blocking even
// when the surrounding select has a default, because the select belongs
// to the statement, not the lock analysis.
func (w *worker) enqueueChannelUnderLock(j int) {
	w.mu.Lock()
	select {
	case w.jobs <- j: // want `channel send while w.mu is held`
	default:
	}
	w.mu.Unlock()
}

// enqueueSliceUnderLock is the blessed shape: bounded slice queue, pure
// memory ops under the lock.
func (w *worker) enqueueSliceUnderLock(j int) {
	w.mu.Lock()
	if len(w.queue) < w.depth {
		w.queue = append(w.queue, j)
	}
	w.mu.Unlock()
}

type daemon struct {
	mu      sync.Mutex
	wg      sync.WaitGroup
	workers []*worker
	hook    func()
}

// scheduleCollectThenEnqueue is the event-loop idiom: pick targets under
// the lock, act after releasing it.
func (d *daemon) scheduleCollectThenEnqueue() {
	var targets []*worker
	d.mu.Lock()
	targets = append(targets, d.workers...)
	d.mu.Unlock()
	for _, w := range targets {
		w.enqueueSliceUnderLock(1)
	}
}

// spawnUnderLock: starting a goroutine is non-blocking, and the goroutine
// body runs with a clean slate.
func (d *daemon) spawnUnderLock() {
	d.mu.Lock()
	d.wg.Add(1) // Add never blocks; only Wait does
	go func() {
		defer d.wg.Done()
		time.Sleep(1)
	}()
	d.mu.Unlock()
}

func (d *daemon) waitUnderLock() {
	d.mu.Lock()
	d.wg.Wait() // want `sync wait while d.mu is held`
	d.mu.Unlock()
}

func (d *daemon) fireHookUnderLock() {
	d.mu.Lock()
	d.hook() // want `call through a function value while d.mu is held`
	d.mu.Unlock()
}

// fireHookAfterUnlock is the blessed event pattern: collect under the
// lock, fire after.
func (d *daemon) fireHookAfterUnlock() {
	d.mu.Lock()
	h := d.hook
	d.mu.Unlock()
	h()
}

func (d *daemon) backoffUnderLock() {
	d.mu.Lock()
	time.Sleep(1) // want `time.Sleep while d.mu is held`
	d.mu.Unlock()
}

// nestedLocks: statsMu-style nesting is fine; the inner lock methods are
// not blocking operations themselves.
func (d *daemon) nestedLocks(w *worker) {
	d.mu.Lock()
	w.mu.Lock()
	w.queue = w.queue[:0]
	w.mu.Unlock()
	d.mu.Unlock()
}
