// Package lockorderfix exercises the lockorder analyzer: mutexes
// annotated //bsub:lockrank N must be acquired in increasing rank
// order, directly or through package-local calls, and any mutex that
// nests with a ranked one must itself be ranked.
package lockorderfix

import "sync"

type daemon struct {
	mu sync.Mutex //bsub:lockrank 10
	//bsub:lockrank 20
	workerMu sync.Mutex
	statsMu  sync.Mutex //bsub:lockrank 30
	otherMu  sync.Mutex // unranked; must never nest with the ranked set
	freeMu   sync.Mutex // unranked; nests only with other unranked locks
	spareMu  sync.Mutex
	count    int
}

// orderedNesting follows the declared order: 10 then 20 then 30.
func (d *daemon) orderedNesting() {
	d.mu.Lock()
	d.workerMu.Lock()
	d.statsMu.Lock()
	d.count++
	d.statsMu.Unlock()
	d.workerMu.Unlock()
	d.mu.Unlock()
}

// invertedNesting takes statsMu before mu: the deadlock pair.
func (d *daemon) invertedNesting() {
	d.statsMu.Lock()
	d.mu.Lock() // want `inverts the declared lock order`
	d.mu.Unlock()
	d.statsMu.Unlock()
}

// selfDeadlock reacquires a mutex it already holds.
func (d *daemon) selfDeadlock() {
	d.mu.Lock()
	d.mu.Lock() // want `self-deadlock`
	d.mu.Unlock()
	d.mu.Unlock()
}

// bump is the stats pattern: acquires statsMu, callable under mu.
func (d *daemon) bump() {
	d.statsMu.Lock()
	d.count++
	d.statsMu.Unlock()
}

// transitiveOrdered calls bump (rank 30) under mu (rank 10): legal.
func (d *daemon) transitiveOrdered() {
	d.mu.Lock()
	d.bump()
	d.mu.Unlock()
}

// grab acquires mu.
func (d *daemon) grab() {
	d.mu.Lock()
	d.count++
	d.mu.Unlock()
}

// transitiveInverted calls grab (rank 10) while holding statsMu
// (rank 30): the same deadlock, one call deep.
func (d *daemon) transitiveInverted() {
	d.statsMu.Lock()
	d.grab() // want `call to grab acquires daemon\.mu \(lockrank 10\) while daemon\.statsMu \(lockrank 30\) is held`
	d.statsMu.Unlock()
}

// rankedUnderUnranked nests a ranked lock under an unannotated one:
// the annotation set must stay closed over everything that nests.
func (d *daemon) rankedUnderUnranked() {
	d.otherMu.Lock()
	d.mu.Lock() // want `while unranked mutex d\.otherMu is held`
	d.mu.Unlock()
	d.otherMu.Unlock()
}

// unrankedUnderRanked is the same gap from the other side.
func (d *daemon) unrankedUnderRanked() {
	d.mu.Lock()
	d.otherMu.Lock() // want `unranked mutex \(otherMu\) while daemon\.mu \(lockrank 10\) is held`
	d.otherMu.Unlock()
	d.mu.Unlock()
}

// unrankedPair: two unranked mutexes may nest freely — there is no
// declared order to check them against.
func (d *daemon) unrankedPair() {
	d.freeMu.Lock()
	d.spareMu.Lock()
	d.spareMu.Unlock()
	d.freeMu.Unlock()
}

// sequentialNotNested: release before reacquire is not nesting.
func (d *daemon) sequentialNotNested() {
	d.statsMu.Lock()
	d.count++
	d.statsMu.Unlock()
	d.mu.Lock()
	d.count++
	d.mu.Unlock()
}

// goroutineCleanSlate: the spawned body runs on its own stack without
// the spawner's locks.
func (d *daemon) goroutineCleanSlate() {
	d.statsMu.Lock()
	go func() {
		d.mu.Lock()
		d.count++
		d.mu.Unlock()
	}()
	d.statsMu.Unlock()
}

// deferredUnlockHeld: a deferred Unlock keeps the lock held for the
// rest of the body, so the inversion below still fires.
func (d *daemon) deferredUnlockHeld() {
	d.statsMu.Lock()
	defer d.statsMu.Unlock()
	d.mu.Lock() // want `inverts the declared lock order`
	d.mu.Unlock()
}

type badranks struct {
	//bsub:lockrank ten
	m sync.Mutex // want `rank must be a decimal integer`
	//bsub:lockrank 5
	n int // want `not a sync\.Mutex`
}

func (b *badranks) use() {
	b.m.Lock()
	b.n++
	b.m.Unlock()
}
