// Package lifecyclefix exercises the lifecycle analyzer: every
// goroutine must be tied to a shutdown path — a WaitGroup Add/Done
// pairing or a receive from a shutdown channel — and the Add must pair
// with the spawn on every path.
package lifecyclefix

import "sync"

type node struct {
	wg     sync.WaitGroup
	closed chan struct{}
	jobs   chan int
}

// spawnTracked is the blessed shape: Add, then spawn, Done inside.
func (n *node) spawnTracked() {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
	}()
}

// spawnSelectShutdown is tied through the shutdown-channel receive.
func (n *node) spawnSelectShutdown() {
	go func() {
		select {
		case <-n.closed:
		case j := <-n.jobs:
			_ = j
		}
	}()
}

func (n *node) work() {}

// spawnFireAndForget has neither a Done nor a shutdown receive: the
// goroutine outlives Close unobserved.
func (n *node) spawnFireAndForget() {
	go func() { // want `fire-and-forget`
		n.work()
	}()
}

// spawnNamedUntracked is the same leak through a named callee.
func (n *node) spawnNamedUntracked() {
	go n.work() // want `fire-and-forget`
}

// spawnDoneWithoutAdd signals Done with no Add anywhere before the
// spawn: Wait's counter goes negative.
func (n *node) spawnDoneWithoutAdd() {
	go func() { // want `no wg\.Add precedes`
		defer n.wg.Done()
	}()
}

// spawnConditionally leaks the Add on the skipped branch: the Add is
// unconditional but the spawn is not, so a false cond deadlocks Wait.
func (n *node) spawnConditionally(cond bool) {
	n.wg.Add(1)
	if cond {
		go func() { // want `split across a conditional`
			defer n.wg.Done()
		}()
	}
}

// drain signals Done and consumes the queue; loop selects on the
// shutdown channel. Both make their spawners clean transitively.
func (n *node) drain() {
	defer n.wg.Done()
	for range n.jobs {
	}
}

func (n *node) loop() {
	for {
		select {
		case <-n.closed:
			return
		case j := <-n.jobs:
			_ = j
		}
	}
}

// spawnNamed ties through the named callee's Done.
func (n *node) spawnNamed() {
	n.wg.Add(1)
	go n.drain()
}

// spawnLoop ties through the named callee's shutdown receive.
func (n *node) spawnLoop() {
	go n.loop()
}

// spawnWorkerIdiom is the mesh worker-pool shape: Add inside the "arm
// the drainer" branch, spawn after it behind the matching flag. The
// sites sit in sibling branches — neither encloses the other — so the
// pairing is legal even though both are conditional.
func (n *node) spawnWorkerIdiom(running *bool) {
	spawn := false
	if !*running {
		*running = true
		n.wg.Add(1)
		spawn = true
	}
	if spawn {
		go func() {
			n.drain()
		}()
	}
}
