// Package sim exercises the determinism analyzer over the sharded-runner
// patterns it was extended to guard: map-ordered shard merges, ambient
// RNG in stream generators, and wall clocks in the event loop. The clean
// variants mirror how internal/sim actually writes these.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// report stands in for a shard-local metrics collector.
type report struct {
	delays []int64
	sum    float64
}

// mergeLeaky merges shard results in map order: the appended sequence
// (and any float accumulation) inherits the map's iteration order.
func mergeLeaky(shards map[int]*report) *report {
	total := &report{}
	for _, r := range shards { // shard merge must not be map-ordered
		total.delays = append(total.delays, r.delays...) // want `append to total\.delays inside a map range leaks iteration order; sort the result or iterate sorted keys`
	}
	return total
}

// mergeFloatLeaky shows the float-sum variant of the same bug.
func mergeFloatLeaky(shards map[int]*report) float64 {
	sum := 0.0
	for _, r := range shards {
		sum += r.sum // want `floating-point accumulation into sum inside a map range is order-sensitive`
	}
	return sum
}

// mergeFieldFloatLeaky accumulates into an outer struct field — the same
// bug through a selector.
func mergeFieldFloatLeaky(shards map[int]*report, total *report) {
	for _, r := range shards {
		total.sum += r.sum // want `floating-point accumulation into total\.sum inside a map range is order-sensitive`
	}
}

// mergeFieldSorted appends into a field and sorts it afterwards: fine.
func mergeFieldSorted(shards map[int]*report, total *report) {
	for _, r := range shards {
		total.delays = append(total.delays, r.delays...) // sorted below
	}
	sort.Slice(total.delays, func(i, j int) bool { return total.delays[i] < total.delays[j] })
}

// mergeSorted is the deterministic idiom: collect, then sort.
func mergeSorted(shards map[int]*report) []int64 {
	var out []int64
	for _, r := range shards {
		out = append(out, r.delays...) // sorted below
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pairStream stands in for a lazily instantiated contact generator.
type pairStream struct {
	t   float64
	rng *rand.Rand
}

// advanceAmbient draws from the global math/rand state: two runs of the
// same seeded simulation would see different contact schedules.
func advanceAmbient(p *pairStream) {
	p.t += rand.ExpFloat64() // want `global math/rand\.ExpFloat64 is seeded from runtime state; use a seeded \*rand\.Rand`
}

// advanceSeeded draws from the pair's own derived generator: fine.
func advanceSeeded(p *pairStream) {
	p.t += p.rng.ExpFloat64()
}

// epochStamp reads the wall clock where only the simulation clock may
// appear.
func epochStamp() time.Time {
	return time.Now() // want `time.Now reads the wall clock; thread the simulation clock explicitly`
}

// epochWidth does Duration arithmetic only: fine.
func epochWidth(now, epoch time.Duration) int64 {
	return int64(now / epoch)
}
