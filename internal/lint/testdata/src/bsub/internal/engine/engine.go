// Package engine is a stub of the real bsub/internal/engine with just
// enough shape for the claimsettle fixtures: the Claim type and the three
// claim constructors with their (claim, ok) contract.
package engine

type Claim struct{}

func (c *Claim) Commit()  {}
func (c *Claim) Abort()   {}
func (c *Claim) Msg() int { return 0 }

type Session struct{}

func (s *Session) ClaimCarried(id int) (*Claim, bool)     { return nil, false }
func (s *Session) ClaimDirect(id int) (*Claim, bool)      { return nil, false }
func (s *Session) ClaimReplication(id int) (*Claim, bool) { return nil, false }
func (s *Session) Release()                               {}
