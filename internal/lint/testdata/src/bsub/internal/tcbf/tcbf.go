// Package tcbf is a stub of the real filter package, doubling as the
// wireerr fixture: error results must be checked or explicitly discarded.
package tcbf

import "time"

type Filter struct{}

func (f *Filter) Insert(key string, now time.Duration) error { return nil }

func (f *Filter) writeFrame() error { return nil }

func use(f *Filter, now time.Duration) {
	f.Insert("k", now)     // want `unchecked error from Insert; handle it or discard it with _ =`
	_ = f.Insert("k", now) // explicit discard documents the intentional drop
	if err := f.Insert("k", now); err != nil {
		_ = err
	}
	f.writeFrame() // want `unchecked error from writeFrame; handle it or discard it with _ =`
	defer f.writeFrame()
}
