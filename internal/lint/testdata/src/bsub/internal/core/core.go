// Package core exercises the determinism analyzer inside its scoped
// package set: no wall clocks, no global rand, no order-sensitive map
// iteration.
package core

import (
	"math/rand"
	"sort"
	"time"

	"bsub/internal/tcbf"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now reads the wall clock; thread the simulation clock explicitly`
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn is seeded from runtime state; use a seeded \*rand.Rand`
}

func seededRand(r *rand.Rand) int {
	return r.Intn(10) // methods on a seeded generator are fine
}

func newSeeded() *rand.Rand {
	return rand.New(rand.NewSource(1)) // constructors are fine
}

func leakOrder(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append to out inside a map range leaks iteration order; sort the result or iterate sorted keys`
	}
	return out
}

func sortedOrder(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // sorted below: the append-then-sort idiom is fine
	}
	sort.Ints(out)
	return out
}

func floatAccum(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside a map range is order-sensitive`
	}
	return sum
}

func intAccum(m map[int]int) int {
	sum := 0
	for _, v := range m {
		sum += v // integer addition commutes exactly: fine
	}
	return sum
}

func localAccum(m map[int][]float64) int {
	count := 0
	for _, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v // s is loop-local: per-key, not order-sensitive
		}
		if s > 1 {
			count++
		}
	}
	return count
}

func filterOrder(f *tcbf.Filter, m map[string]bool, now time.Duration) {
	for k := range m {
		_ = f.Insert(k, now) // want `Filter.Insert inside a map range makes filter state depend on iteration order`
	}
}
