// Package wiretaintfix exercises the wiretaint analyzer: integers
// extracted from the wire by multi-byte binary reads are tainted and
// must pass a recognized validation — an explicit comparison, a switch,
// or a Validate-style call — before sizing an allocation, indexing, or
// bounding a loop.
package wiretaintfix

import "encoding/binary"

const maxFrame = 1 << 20

// unguardedMake sizes an allocation straight off the wire: the exact
// shape of the historical frame-length bugs.
func unguardedMake(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	return make([]byte, n) // want `wire-derived length n used as make size`
}

// guardedMake checks the bound first: the readFrame shape.
func guardedMake(b []byte) []byte {
	n := binary.BigEndian.Uint32(b)
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}

// conversionPropagates: a widening conversion keeps the taint.
func conversionPropagates(b []byte) []byte {
	pl := int(binary.BigEndian.Uint32(b))
	return make([]byte, pl) // want `wire-derived length pl used as make size`
}

// byteSized: single-byte loads are bounded by 255 and stay clean —
// count bytes and version switches must not need ceremony.
func byteSized(b []byte) []byte {
	n := int(b[0])
	return make([]byte, n)
}

// taintedIndex indexes the buffer with an unvalidated offset.
func taintedIndex(b []byte) byte {
	off := binary.BigEndian.Uint16(b)
	return b[off] // want `wire-derived index off used without bounds validation`
}

// taintedSliceBound slices with an unvalidated length.
func taintedSliceBound(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	return b[:n] // want `wire-derived slice bound n used without validation`
}

// lengthEqualityGuard: comparing against the remaining bytes is the
// recognized validation (the decodeMessage shape).
func lengthEqualityGuard(b []byte) []byte {
	pl := int(binary.BigEndian.Uint32(b))
	if len(b) != pl+4 {
		return nil
	}
	return b[4 : 4+pl]
}

// taintedLoopBound bounds a loop off the wire.
func taintedLoopBound(b []byte) int {
	n := int(binary.BigEndian.Uint32(b))
	sum := 0
	for i := 0; i < n; i++ { // want `wire-derived value n used as loop bound`
		sum += i
	}
	return sum
}

// taintedRangeBound: go1.22 range-over-int with a wire-derived bound.
func taintedRangeBound(b []byte) int {
	n := int(binary.BigEndian.Uint32(b))
	sum := 0
	for i := range n { // want `wire-derived value n used as loop bound`
		sum += i
	}
	return sum
}

func validLen(n int) bool { return n >= 0 && n < maxFrame }

// validateCallSanitizes: passing through a Validate-style call clears
// the taint (the parseHeader shape).
func validateCallSanitizes(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	if !validLen(n) {
		return nil
	}
	return make([]byte, n)
}

// switchSanitizes: switching on the value enumerates it.
func switchSanitizes(b []byte) []byte {
	n := binary.BigEndian.Uint16(b)
	switch n {
	case 1, 2, 4:
		return make([]byte, n)
	}
	return nil
}

// arithmeticPropagates: taint survives arithmetic into derived values.
func arithmeticPropagates(b []byte) []byte {
	words := binary.BigEndian.Uint32(b)
	total := words * 8
	return make([]byte, total) // want `wire-derived length total used as make size`
}

// reassignmentClears: overwriting with a trusted value drops the taint.
func reassignmentClears(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	n = len(b)
	return make([]byte, n)
}

// minClampIsClean: comparing inside the guard sanitizes both operands,
// so the min-style clamp written as an if is recognized validation.
func minClampIsClean(b []byte) []byte {
	n := int(binary.BigEndian.Uint32(b))
	if n > len(b) {
		n = len(b)
	}
	return make([]byte, n)
}
