// Package livenode exercises the lockio analyzer: no blocking operation
// while a mutex is held.
package livenode

import (
	"net"
	"sync"
	"time"
)

type node struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	conn net.Conn
	ch   chan int
}

func (n *node) writeUnderLock(b []byte) {
	n.mu.Lock()
	n.conn.Write(b) // want `net.Conn.Write while n.mu is held`
	n.mu.Unlock()
}

func (n *node) writeAfterUnlock(b []byte) {
	n.mu.Lock()
	n.mu.Unlock()
	_, _ = n.conn.Write(b)
}

func (n *node) deferredUnlock(b []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, _ = n.conn.Write(b) // want `net.Conn.Write while n.mu is held`
}

func (n *node) deadlineUnderLock(t time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.conn.SetDeadline(t) // deadline setters never touch the wire
}

func (n *node) sendUnderLock(v int) {
	n.mu.Lock()
	n.ch <- v // want `channel send while n.mu is held`
	n.mu.Unlock()
}

func (n *node) sleepUnderLock() {
	n.mu.Lock()
	time.Sleep(1) // want `time.Sleep while n.mu is held`
	n.mu.Unlock()
}

func (n *node) flush() {
	_, _ = n.conn.Write(nil)
}

func (n *node) flushUnderLock() {
	n.mu.Lock()
	n.flush() // want `call to flush, which blocks while n.mu is held`
	n.mu.Unlock()
}

func (n *node) spawnUnderLock() {
	n.mu.Lock()
	go func() {
		_, _ = n.conn.Write(nil) // the goroutine does not hold the spawner's lock
	}()
	n.mu.Unlock()
}

func (n *node) branchUnlock(b []byte, fast bool) {
	n.mu.Lock()
	if fast {
		n.mu.Unlock()
		_, _ = n.conn.Write(b) // this branch released the lock first
		return
	}
	n.mu.Unlock()
}

func (n *node) recvUnderLock() {
	n.mu.Lock()
	select { // want `select without default while n.mu is held`
	case v := <-n.ch: // want `channel receive while n.mu is held`
		_ = v
	}
	n.mu.Unlock()
}

func (n *node) pollNoLock() {
	select {
	case v := <-n.ch:
		_ = v
	default:
	}
}

func (n *node) hookUnderLock(hook func()) {
	n.mu.Lock()
	hook() // want `call through a function value while n.mu is held`
	n.mu.Unlock()
}

func (n *node) rlockRead(b []byte) {
	n.rw.RLock()
	_, _ = n.conn.Read(b) // want `net.Conn.Read while n.rw is held`
	n.rw.RUnlock()
}
