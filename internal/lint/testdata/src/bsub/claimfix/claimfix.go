// Package claimfix exercises the claimsettle analyzer: every *engine.Claim
// must reach Commit or Abort on every path, or visibly escape.
package claimfix

import "bsub/internal/engine"

func leakExit(s *engine.Session) {
	c, ok := s.ClaimCarried(1) // want `claim from ClaimCarried may reach function exit without Commit or Abort`
	_ = ok
	_ = c
}

func settled(s *engine.Session) {
	c, ok := s.ClaimCarried(1)
	if !ok {
		return
	}
	c.Commit()
}

func abortedViaDefer(s *engine.Session) {
	c, _ := s.ClaimDirect(2)
	if c == nil {
		return
	}
	defer c.Abort()
}

func branchLeak(s *engine.Session, keep bool) {
	c, ok := s.ClaimReplication(3) // want `claim from ClaimReplication may reach function exit without Commit or Abort`
	if !ok {
		return
	}
	if keep {
		c.Commit()
	}
}

func loopLeak(s *engine.Session, ids []int) {
	for _, id := range ids {
		c, ok := s.ClaimCarried(id) // want `claim from ClaimCarried is not settled before the next loop iteration`
		if !ok {
			continue
		}
		_ = c
	}
}

func loopSettled(s *engine.Session, ids []int) {
	for _, id := range ids {
		c, ok := s.ClaimCarried(id)
		if !ok {
			continue
		}
		c.Commit()
	}
}

func discarded(s *engine.Session) {
	s.ClaimCarried(1)       // want `result of ClaimCarried is discarded; the claim must be settled or stored`
	_, _ = s.ClaimDirect(2) // want `result of ClaimDirect is discarded; the claim must be settled or stored`
}

func overwritten(s *engine.Session) {
	c, _ := s.ClaimCarried(1) // want `claim from ClaimCarried is overwritten before Commit or Abort`
	c, _ = s.ClaimCarried(2)
	if c != nil {
		c.Commit()
	}
}

func escapes(s *engine.Session, sink []*engine.Claim) []*engine.Claim {
	c, ok := s.ClaimCarried(1)
	if !ok {
		return sink
	}
	return append(sink, c)
}

func paramLeak(c *engine.Claim, drop bool) { // want `claim parameter c may reach return without Commit or Abort`
	if drop {
		return
	}
	c.Commit()
}

func paramSettled(c *engine.Claim, commit bool) {
	if commit {
		c.Commit()
		return
	}
	c.Abort()
}

func peeked(s *engine.Session) {
	c, ok := s.ClaimCarried(1) // want `claim from ClaimCarried may reach function exit without Commit or Abort`
	if !ok {
		return
	}
	_ = c.Msg()
}

func capturedEscapes(s *engine.Session) func() {
	c, ok := s.ClaimCarried(1)
	if !ok {
		return nil
	}
	return func() { c.Commit() }
}

func suppressedLeak(s *engine.Session) {
	//lint:ignore bsub/claimsettle the adapter refunds via Release on this teardown path
	c, _ := s.ClaimCarried(9)
	_ = c
}
