// Package hotfix exercises the hotpathalloc analyzer: //bsub:hotpath
// functions must not allocate and may only call marked or allowlisted
// functions.
package hotfix

import (
	"fmt"
	"math"
	"math/rand"
)

//bsub:hotpath
func callsFmt(x int) {
	fmt.Println(x) // want `hotpath function calls fmt.Println, which allocates`
}

//bsub:hotpath
func coldErrorExit(ok bool) error {
	if !ok {
		return fmt.Errorf("bad") // error exits are cold
	}
	return nil
}

//bsub:hotpath
func concat(a, b string) int {
	s := a + b // want `string concatenation allocates in a hotpath function`
	return len(s)
}

//bsub:hotpath
func sums(a, b int) int {
	c := a + b // integer addition is fine
	return c
}

//bsub:hotpath
func conversions(b []byte, s string) int {
	str := string(b) // want `\[\]byte-to-string conversion allocates in a hotpath function`
	bs := []byte(s)  // want `string-to-\[\]byte conversion allocates in a hotpath function`
	return len(str) + len(bs)
}

//bsub:hotpath
func arena(chunks [][]byte, n int) [][]byte {
	chunks = append(chunks, make([]byte, n)) // amortized growth inside append is exempt
	buf := make([]byte, n)                   // want `make allocates in a hotpath function`
	_ = buf
	return chunks
}

//bsub:hotpath
func literals() {
	m := map[int]int{} // want `map literal allocates in a hotpath function`
	_ = m
	s := []int{1, 2} // want `slice literal allocates in a hotpath function`
	_ = s
}

//bsub:hotpath
func closures(y int) {
	f := func(a int) int { return a * 2 } // captures nothing: fine
	_ = f
	g := func() int { return y } // want `closure captures variables and allocates in a hotpath function`
	_ = g
}

//bsub:hotpath
func allowlisted(a, b float64) float64 {
	m := math.Max(a, b) // math is on the allowlist
	return m
}

//bsub:hotpath
func offList(n int) int {
	v := rand.Intn(n) // want `hotpath function calls math/rand.Intn, which is not on the allowlist`
	return v
}

func unmarked() {}

//bsub:coldpath
func growSlow() {}

//bsub:hotpath
func fast() {}

//bsub:hotpath
func calls() {
	fast()     // hotpath callee: fine
	growSlow() // coldpath escape hatch: fine
	unmarked() // want `hotpath function calls unmarked, which is not marked //bsub:hotpath or //bsub:coldpath`
}

// lazyState mirrors the compact-node-state idiom: hot accessors guard a
// nil map and delegate the one-time allocation to a coldpath grow helper.
type lazyState struct {
	seen map[int]int
}

//bsub:coldpath
func (l *lazyState) grow() { l.seen = make(map[int]int) }

//bsub:hotpath
func (l *lazyState) record(k, v int) {
	if l.seen == nil {
		l.grow() // coldpath escape hatch: fine
	}
	l.seen[k] = v
}

//bsub:hotpath
func (l *lazyState) recordInline(k, v int) {
	if l.seen == nil {
		l.seen = make(map[int]int) // want `make allocates in a hotpath function`
	}
	l.seen[k] = v
}

//bsub:hotpath
func suppressed() {
	//lint:ignore bsub/hotpathalloc one-time init, proven cold by BenchmarkContact
	m := map[int]int{}
	_ = m
}

// notHot allocates freely: no directive, no findings.
func notHot() map[int]int {
	return map[int]int{1: 2}
}
