// Package other proves the determinism analyzer's scoping: adapter code
// outside the deterministic core may read the wall clock and iterate maps
// freely.
package other

import "time"

func wallClockOK() time.Time { return time.Now() }

func orderOK(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
