package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Lifecycle ties every goroutine in the concurrent packages to a
// shutdown path. The mesh daemon, the livenode session engine, and the
// sharded simulator all spawn workers; the dynamic twin of this check —
// the internal/testutil goroutine-leak assertion — only sees the
// interleavings a test happens to execute, while this analyzer proves
// the structural half over all paths:
//
//   - every `go` statement's body must, transitively through
//     package-local calls, either signal a sync.WaitGroup (Done) or
//     receive from a shutdown channel (a field or variable whose name
//     says closed/done/quit/stop/shutdown) — otherwise the goroutine is
//     fire-and-forget and outlives Close (rule R1);
//   - a body that signals wg.Done must have a wg.Add earlier in the
//     spawning function, or the counter goes negative (rule R2);
//   - the Add and the `go` must not be split across a conditional: an
//     unconditional Add paired with a branch-guarded spawn leaks the
//     counter on the skipped branch and deadlocks Wait (rule R3).
//
// The Add/spawn pairing is matched in source order, not dominance, so
// the worker-pool idiom — Add under the queue lock inside an "arm the
// drainer" branch, spawn after unlock behind the matching flag — stays
// legal: both sites sit in sibling branches and neither strictly
// encloses the other.
var Lifecycle = &Analyzer{
	Name: "lifecycle",
	Doc:  "every goroutine in livenode/mesh/sim must be tied to a shutdown path (WaitGroup pairing or shutdown-channel receive)",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/livenode", "internal/mesh", "internal/sim")
	},
	Run: runLifecycle,
}

// lcFacts is what a function body can prove about shutdown wiring.
type lcFacts struct {
	// done holds the WaitGroup objects (fields or captured locals) the
	// body signals Done on, transitively through package-local calls.
	done map[types.Object]bool
	// unknownDone is set when a Done receiver cannot be resolved to an
	// object; it satisfies R1 but exempts the body from Add matching.
	unknownDone bool
	// shutdown is set when the body receives from a shutdown-named
	// channel (directly or via select/range).
	shutdown bool
}

func newLCFacts() *lcFacts { return &lcFacts{done: map[types.Object]bool{}} }

func (f *lcFacts) tied() bool { return f.shutdown || f.unknownDone || len(f.done) > 0 }

// merge unions other into f, reporting whether anything changed.
func (f *lcFacts) merge(other *lcFacts) bool {
	changed := false
	for obj := range other.done {
		if !f.done[obj] {
			f.done[obj] = true
			changed = true
		}
	}
	if other.unknownDone && !f.unknownDone {
		f.unknownDone = true
		changed = true
	}
	if other.shutdown && !f.shutdown {
		f.shutdown = true
		changed = true
	}
	return changed
}

type lcChecker struct {
	pass  *Pass
	info  *types.Info
	facts map[*types.Func]*lcFacts
}

func runLifecycle(pass *Pass) {
	c := &lcChecker{pass: pass, info: pass.Pkg.Info, facts: map[*types.Func]*lcFacts{}}

	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var decls []fnDecl
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
			decls = append(decls, fnDecl{obj, fd})
		}
	})

	// Phase 1: direct facts per function, then propagate through the
	// package-local call graph to a fixpoint, mirroring lockio's
	// blocking-ness propagation.
	for _, d := range decls {
		c.facts[d.obj] = c.directFacts(d.decl.Body)
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			f := c.facts[d.obj]
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(c.info, call)
				if fn == nil || fn.Pkg() != c.pass.Pkg.Types {
					return true
				}
				if callee, ok := c.facts[fn]; ok && f.merge(callee) {
					changed = true
				}
				return true
			})
		}
	}

	// Phase 2: walk each declaration, pairing every `go` statement with
	// the WaitGroup Adds that precede it in source order.
	for _, d := range decls {
		c.checkDecl(d.decl)
	}
}

// directFacts scans a body — including nested closures, which run
// within the function's dynamic extent (deferred cleanups, spawned
// drains) and count as shutdown evidence — for Done calls and
// shutdown-channel receives.
func (c *lcChecker) directFacts(body *ast.BlockStmt) *lcFacts {
	f := newLCFacts()
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, method, ok := syncCallee(c.info, n, "WaitGroup"); ok && method == "Done" {
				if obj := resolveObj(c.info, recv); obj != nil {
					f.done[obj] = true
				} else {
					f.unknownDone = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && c.isShutdownChan(n.X) {
				f.shutdown = true
			}
		case *ast.RangeStmt:
			if c.isShutdownChan(n.X) {
				f.shutdown = true
			}
		}
		return true
	})
	return f
}

// isShutdownChan reports whether e is a channel-typed field or variable
// whose name marks it as the shutdown signal.
func (c *lcChecker) isShutdownChan(e ast.Expr) bool {
	e = ast.Unparen(e)
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return false
	}
	tv, ok := c.info.Types[e]
	if !ok {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	lower := strings.ToLower(name)
	for _, marker := range []string{"close", "done", "quit", "stop", "shut"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// lcEvent is one wg.Add or `go` site with its enclosing block path,
// used for the cross-branch pairing check (R3).
type lcEvent struct {
	pos  int // byte offset, for source ordering
	obj  types.Object
	name string
	path []ast.Node
	call *ast.CallExpr // go target, nil for Add events
}

// lcPathNode reports whether n contributes to the block path, and
// whether entering it means execution is conditional.
func lcPathNode(n ast.Node) (onPath, conditional bool) {
	switch n.(type) {
	case *ast.BlockStmt:
		return true, false
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
		*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
		*ast.CaseClause, *ast.CommClause, *ast.FuncLit:
		return true, true
	}
	return false, false
}

func (c *lcChecker) checkDecl(fd *ast.FuncDecl) {
	var adds, gos []lcEvent
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, method, ok := syncCallee(c.info, n, "WaitGroup"); ok && method == "Add" {
				if obj := resolveObj(c.info, recv); obj != nil {
					adds = append(adds, lcEvent{
						pos:  int(n.Pos()),
						obj:  obj,
						name: obj.Name(),
						path: pathSnapshot(stack),
					})
				}
			}
		case *ast.GoStmt:
			gos = append(gos, lcEvent{
				pos:  int(n.Pos()),
				path: pathSnapshot(stack),
				call: n.Call,
			})
		}
		return true
	})

	for _, g := range gos {
		c.checkGo(g, adds)
	}
}

// pathSnapshot projects the traversal stack onto the path-relevant
// nodes.
func pathSnapshot(stack []ast.Node) []ast.Node {
	var out []ast.Node
	for _, n := range stack {
		if on, _ := lcPathNode(n); on {
			out = append(out, n)
		}
	}
	return out
}

// goFacts evaluates the shutdown evidence of a `go` statement's target:
// the fixpoint facts for a named package function, or the literal's own
// facts plus those of every package function it calls.
func (c *lcChecker) goFacts(call *ast.CallExpr) *lcFacts {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		f := c.directFacts(lit.Body)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(c.info, inner)
			if fn == nil || fn.Pkg() != c.pass.Pkg.Types {
				return true
			}
			if callee, ok := c.facts[fn]; ok {
				f.merge(callee)
			}
			return true
		})
		return f
	}
	if fn := calleeOf(c.info, call); fn != nil && fn.Pkg() == c.pass.Pkg.Types {
		if f, ok := c.facts[fn]; ok {
			return f
		}
	}
	return newLCFacts()
}

func (c *lcChecker) checkGo(g lcEvent, adds []lcEvent) {
	f := c.goFacts(g.call)
	if !f.tied() {
		c.pass.Reportf(g.call.Pos(), "goroutine is fire-and-forget: its body neither signals a WaitGroup Done nor receives from a shutdown channel; tie it to the shutdown path")
		return
	}
	if f.unknownDone || len(f.done) == 0 {
		return
	}
	for obj := range f.done {
		// Latest Add on the same WaitGroup preceding the spawn in
		// source order.
		var add *lcEvent
		for i := range adds {
			if adds[i].obj == obj && adds[i].pos < g.pos {
				add = &adds[i]
			}
		}
		if add == nil {
			if !f.shutdown {
				c.pass.Reportf(g.call.Pos(), "goroutine signals %s.Done but no %s.Add precedes the go statement in the spawning function", obj.Name(), obj.Name())
			}
			continue
		}
		// R3: the Add's block strictly encloses the spawn and the path
		// between them crosses a conditional — a skipped branch leaks
		// the Add and deadlocks Wait.
		if len(add.path) < len(g.path) && samePathPrefix(add.path, g.path) {
			for _, n := range g.path[len(add.path):] {
				if _, cond := lcPathNode(n); cond {
					c.pass.Reportf(g.call.Pos(), "%s.Add and the goroutine signaling its Done are split across a conditional: a branch that skips the spawn leaks the Add and deadlocks Wait", obj.Name())
					break
				}
			}
		}
	}
}

func samePathPrefix(prefix, path []ast.Node) bool {
	for i, n := range prefix {
		if path[i] != n {
			return false
		}
	}
	return true
}
