package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ClaimSettle enforces copy conservation at the source level: every
// *engine.Claim returned by ClaimCarried/ClaimDirect/ClaimReplication
// (and every claim received as a function parameter) must reach
// Commit() or Abort() on all control-flow paths in the enclosing
// function, or visibly escape it — be returned, stored into a field or
// collection, sent on a channel, or passed to another function that
// inherits the obligation.
//
// The walk is path-sensitive over structured control flow and
// understands the claim API contract: `c == nil` / `c != nil`
// comparisons refine the claim to settled-free on the nil side, and the
// boolean paired with a claim call (`claim, ok := ...`) implies the
// claim is nil on its false side. Reading the claim (c.Msg(),
// c.Payload()) does not discharge the obligation; only
// Commit/Abort/escape does.
var ClaimSettle = &Analyzer{
	Name: "claimsettle",
	Doc:  "engine claims must be committed or aborted on every control-flow path",
	Run:  runClaimSettle,
}

var claimMethods = map[string]bool{
	"ClaimCarried":     true,
	"ClaimDirect":      true,
	"ClaimReplication": true,
}

type claimStatus uint8

const (
	clUntracked claimStatus = iota
	clUnsettled
	clSettled
	clNil
)

// claimState maps each tracked claim variable to its status along one
// control-flow path.
type claimState map[types.Object]claimStatus

func (s claimState) clone() claimState {
	out := make(claimState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func cloneAll(states []claimState) []claimState {
	out := make([]claimState, len(states))
	for i, s := range states {
		out[i] = s.clone()
	}
	return out
}

type claimSite struct {
	pos  token.Pos
	desc string
}

// claimTarget is one enclosing break/continue target (loop, switch,
// select) on the walker's stack.
type claimTarget struct {
	label     string
	isLoop    bool
	breaks    []claimState
	continues []claimState
}

type claimWalker struct {
	pass         *Pass
	info         *types.Info
	sites        map[types.Object]claimSite
	okFor        map[types.Object]types.Object // bool var -> its claim var
	reported     map[token.Pos]bool
	targets      []*claimTarget
	pendingLabel string
}

func runClaimSettle(pass *Pass) {
	info := pass.Pkg.Info
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		fnObj, _ := info.Defs[fd.Name].(*types.Func)
		if fnObj != nil {
			// Claim's own methods (Commit, Abort, Msg) manipulate the
			// claim itself and carry no settle obligation.
			if named := recvNamed(fnObj); named != nil && isNamedType(named, "engine", "Claim") {
				return
			}
		}
		w := &claimWalker{
			pass:     pass,
			info:     info,
			sites:    map[types.Object]claimSite{},
			okFor:    map[types.Object]types.Object{},
			reported: map[token.Pos]bool{},
		}
		w.analyzeFunc(fd.Type.Params, fd.Body)
	})
}

// analyzeFunc flow-analyzes one function or closure body, seeding claim
// parameters as unsettled obligations.
func (w *claimWalker) analyzeFunc(params *ast.FieldList, body *ast.BlockStmt) {
	entry := claimState{}
	if params != nil {
		for _, field := range params.List {
			for _, name := range field.Names {
				obj := w.info.Defs[name]
				if obj == nil {
					continue
				}
				if ptr, ok := obj.Type().(*types.Pointer); ok && isNamedType(ptr.Elem(), "engine", "Claim") {
					entry[obj] = clUnsettled
					w.sites[obj] = claimSite{pos: name.Pos(), desc: "claim parameter " + name.Name}
				}
			}
		}
	}
	if len(entry) == 0 && !mentionsClaims(body) {
		return
	}
	exit := w.stmts(body.List, []claimState{entry})
	w.checkLeaks(exit, token.NoPos, token.NoPos, "may reach function exit without Commit or Abort")
}

// mentionsClaims is a cheap pre-filter: does the body call any Claim*
// method at all?
func mentionsClaims(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && claimMethods[sel.Sel.Name] {
			found = true
		}
		return !found
	})
	return found
}

func (w *claimWalker) objectOf(id *ast.Ident) types.Object {
	if o := w.info.Defs[id]; o != nil {
		return o
	}
	return w.info.Uses[id]
}

func (w *claimWalker) tracked(id *ast.Ident) (types.Object, bool) {
	obj := w.objectOf(id)
	if obj == nil {
		return nil, false
	}
	_, ok := w.sites[obj]
	return obj, ok
}

func (w *claimWalker) reportAt(pos token.Pos, format string, args ...any) {
	if w.reported[pos] {
		return
	}
	w.reported[pos] = true
	w.pass.Reportf(pos, format, args...)
}

// checkLeaks reports every path state holding an unsettled claim. When
// lo/hi are valid the check is restricted to claims born inside that
// span (used for loop bodies at iteration end).
func (w *claimWalker) checkLeaks(states []claimState, lo, hi token.Pos, what string) {
	for _, st := range states {
		for obj, status := range st {
			if status != clUnsettled {
				continue
			}
			site := w.sites[obj]
			if hi != token.NoPos && (site.pos < lo || site.pos > hi) {
				continue
			}
			w.reportAt(site.pos, "%s %s", site.desc, what)
		}
	}
}

// capStates bounds path explosion: past the cap, merge every path into
// a single worst-case state (unsettled wins), which can only over-report
// never under-report.
func (w *claimWalker) capStates(states []claimState) []claimState {
	const maxPaths = 64
	if len(states) <= maxPaths {
		return states
	}
	merged := claimState{}
	for _, st := range states {
		for obj, status := range st {
			prev := merged[obj]
			if prev == clUnsettled {
				continue
			}
			if status == clUnsettled || prev == clUntracked {
				merged[obj] = status
			}
		}
	}
	return []claimState{merged}
}

func (w *claimWalker) stmts(list []ast.Stmt, cur []claimState) []claimState {
	for _, s := range list {
		if len(cur) == 0 {
			break
		}
		cur = w.stmt(s, cur)
	}
	return cur
}

func (w *claimWalker) takeLabel() string {
	l := w.pendingLabel
	w.pendingLabel = ""
	return l
}

func (w *claimWalker) findTarget(label *ast.Ident, needLoop bool) *claimTarget {
	for i := len(w.targets) - 1; i >= 0; i-- {
		t := w.targets[i]
		if label != nil {
			if t.label == label.Name && (!needLoop || t.isLoop) {
				return t
			}
			continue
		}
		if !needLoop || t.isLoop {
			return t
		}
	}
	return nil
}

func (w *claimWalker) stmt(s ast.Stmt, cur []claimState) []claimState {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return w.assign(s, cur)

	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if w.isClaimCall(call) {
				w.reportAt(call.Pos(), "result of %s is discarded; the claim must be settled or stored", claimCallName(call))
				w.scanExpr(call, cur)
				return cur
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && w.objectOf(id) == nil {
				w.scanExpr(call, cur)
				return nil // panic terminates the path; refunds are moot in a crash
			}
		}
		w.scanExpr(s.X, cur)
		return cur

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r, cur)
		}
		w.checkLeaks(cur, token.NoPos, token.NoPos, "may reach return without Commit or Abort")
		return nil

	case *ast.IfStmt:
		if s.Init != nil {
			cur = w.stmt(s.Init, cur)
		}
		w.scanExpr(s.Cond, cur)
		thenStates := cloneAll(cur)
		elseStates := cloneAll(cur)
		for _, st := range thenStates {
			w.refine(s.Cond, true, st)
		}
		for _, st := range elseStates {
			w.refine(s.Cond, false, st)
		}
		thenFall := w.stmts(s.Body.List, thenStates)
		elseFall := elseStates
		if s.Else != nil {
			elseFall = w.stmt(s.Else, elseStates)
		}
		return w.capStates(append(thenFall, elseFall...))

	case *ast.ForStmt:
		label := w.takeLabel()
		if s.Init != nil {
			cur = w.stmt(s.Init, cur)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond, cur)
		}
		t := &claimTarget{label: label, isLoop: true}
		w.targets = append(w.targets, t)
		bodyIn := cloneAll(cur)
		if s.Cond != nil {
			for _, st := range bodyIn {
				w.refine(s.Cond, true, st)
			}
		}
		bodyFall := w.stmts(s.Body.List, bodyIn)
		iterEnd := append(bodyFall, t.continues...)
		if s.Post != nil && len(iterEnd) > 0 {
			iterEnd = w.stmt(s.Post, iterEnd)
		}
		// A claim born inside the body must settle before the next
		// iteration: the variable is about to be reused.
		w.checkLeaks(iterEnd, s.Body.Pos(), s.Body.End(), "is not settled before the next loop iteration")
		w.targets = w.targets[:len(w.targets)-1]
		var exit []claimState
		if s.Cond == nil {
			exit = t.breaks // for{}: only break leaves
		} else {
			zero := cloneAll(cur)
			after := cloneAll(iterEnd)
			for _, st := range zero {
				w.refine(s.Cond, false, st)
			}
			for _, st := range after {
				w.refine(s.Cond, false, st)
			}
			exit = append(append(zero, after...), t.breaks...)
		}
		return w.capStates(exit)

	case *ast.RangeStmt:
		label := w.takeLabel()
		w.scanExpr(s.X, cur)
		t := &claimTarget{label: label, isLoop: true}
		w.targets = append(w.targets, t)
		bodyFall := w.stmts(s.Body.List, cloneAll(cur))
		iterEnd := append(bodyFall, t.continues...)
		w.checkLeaks(iterEnd, s.Body.Pos(), s.Body.End(), "is not settled before the next loop iteration")
		w.targets = w.targets[:len(w.targets)-1]
		exit := append(append(cur, iterEnd...), t.breaks...)
		return w.capStates(exit)

	case *ast.SwitchStmt:
		label := w.takeLabel()
		if s.Init != nil {
			cur = w.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag, cur)
		}
		t := &claimTarget{label: label}
		w.targets = append(w.targets, t)
		var falls []claimState
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			caseIn := cloneAll(cur)
			for _, e := range cc.List {
				w.scanExpr(e, caseIn)
			}
			falls = append(falls, w.stmts(cc.Body, caseIn)...)
		}
		w.targets = w.targets[:len(w.targets)-1]
		exit := append(falls, t.breaks...)
		if !hasDefault {
			exit = append(exit, cur...)
		}
		return w.capStates(exit)

	case *ast.TypeSwitchStmt:
		label := w.takeLabel()
		if s.Init != nil {
			cur = w.stmt(s.Init, cur)
		}
		t := &claimTarget{label: label}
		w.targets = append(w.targets, t)
		var falls []claimState
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			if cc.List == nil {
				hasDefault = true
			}
			caseIn := cloneAll(cur)
			caseIn = w.stmt(s.Assign, caseIn)
			falls = append(falls, w.stmts(cc.Body, caseIn)...)
		}
		w.targets = w.targets[:len(w.targets)-1]
		exit := append(falls, t.breaks...)
		if !hasDefault {
			exit = append(exit, cur...)
		}
		return w.capStates(exit)

	case *ast.SelectStmt:
		label := w.takeLabel()
		t := &claimTarget{label: label}
		w.targets = append(w.targets, t)
		var falls []claimState
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			caseIn := cloneAll(cur)
			if cc.Comm != nil {
				caseIn = w.stmt(cc.Comm, caseIn)
			}
			falls = append(falls, w.stmts(cc.Body, caseIn)...)
		}
		w.targets = w.targets[:len(w.targets)-1]
		if len(s.Body.List) == 0 {
			return t.breaks // select{} blocks forever
		}
		return w.capStates(append(falls, t.breaks...))

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := w.findTarget(s.Label, false); t != nil {
				t.breaks = append(t.breaks, cur...)
			}
			return nil
		case token.CONTINUE:
			if t := w.findTarget(s.Label, true); t != nil {
				t.continues = append(t.continues, cur...)
			}
			return nil
		case token.GOTO:
			return nil // no CFG for goto; drop the path rather than guess
		default: // fallthrough: joined at the switch exit, conservatively
			return cur
		}

	case *ast.LabeledStmt:
		w.pendingLabel = s.Label.Name
		out := w.stmt(s.Stmt, cur)
		w.pendingLabel = ""
		return out

	case *ast.BlockStmt:
		return w.stmts(s.List, cur)

	case *ast.DeferStmt:
		// defer c.Commit() / defer c.Abort() settles the claim on every
		// path from the registration point onward.
		if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj, tracked := w.tracked(id); tracked &&
					(sel.Sel.Name == "Commit" || sel.Sel.Name == "Abort") {
					for _, st := range cur {
						st[obj] = clSettled
					}
					return cur
				}
			}
		}
		w.scanExpr(s.Call, cur)
		return cur

	case *ast.GoStmt:
		w.scanExpr(s.Call, cur)
		return cur

	case *ast.SendStmt:
		w.scanExpr(s.Chan, cur)
		w.scanExpr(s.Value, cur)
		return cur

	case *ast.IncDecStmt:
		w.scanExpr(s.X, cur)
		return cur

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.scanExpr(v, cur)
					}
				}
			}
		}
		return cur

	default:
		return cur
	}
}

// assign handles both claim-producing assignments (tracking begins) and
// ordinary assignments (uses, overwrites).
func (w *claimWalker) assign(s *ast.AssignStmt, cur []claimState) []claimState {
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && w.isClaimCall(call) {
			w.scanExpr(call, cur)
			var claimObj, okObj types.Object
			switch lhs := s.Lhs[0].(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					w.reportAt(call.Pos(), "result of %s is discarded; the claim must be settled or stored", claimCallName(call))
				} else {
					claimObj = w.objectOf(lhs)
				}
			default:
				// Stored into a field, slice slot, or map: the claim
				// escapes with its undo record; the store owns it now.
				w.scanExpr(lhs, cur)
			}
			if len(s.Lhs) > 1 {
				if id, ok := s.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
					okObj = w.objectOf(id)
				}
			}
			if claimObj != nil {
				w.checkReassign(claimObj, cur)
				for _, st := range cur {
					st[claimObj] = clUnsettled
				}
				w.sites[claimObj] = claimSite{pos: s.Pos(), desc: "claim from " + claimCallName(call)}
				if okObj != nil {
					w.okFor[okObj] = claimObj
				}
			}
			return cur
		}
	}
	for i, r := range s.Rhs {
		// `_ = claim` does not settle anything: unlike an error, a
		// claim cannot be meaningfully discarded — it must commit,
		// abort, or move somewhere that will.
		if i < len(s.Lhs) {
			if lhs, ok := s.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok {
					if _, tracked := w.tracked(id); tracked {
						continue
					}
				}
			}
		}
		w.scanExpr(r, cur)
	}
	for i, l := range s.Lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			w.scanExpr(l, cur)
			continue
		}
		obj, tracked := w.tracked(id)
		if !tracked {
			continue
		}
		w.checkReassign(obj, cur)
		status := clSettled
		if len(s.Rhs) == len(s.Lhs) && isNilExpr(s.Rhs[i]) {
			status = clNil
		}
		for _, st := range cur {
			st[obj] = status
		}
	}
	return cur
}

func (w *claimWalker) checkReassign(obj types.Object, cur []claimState) {
	leaked := false
	for _, st := range cur {
		if st[obj] == clUnsettled {
			leaked = true
			st[obj] = clSettled
		}
	}
	if leaked {
		site := w.sites[obj]
		w.reportAt(site.pos, "%s is overwritten before Commit or Abort", site.desc)
	}
}

// scanExpr walks an expression marking tracked claims that escape
// (appear in value position) as settled, while ignoring the
// non-discharging forms: nil comparisons, method calls on the claim
// other than Commit/Abort, and selector bases.
func (w *claimWalker) scanExpr(e ast.Expr, cur []claimState) {
	switch e := e.(type) {
	case nil:
	case *ast.Ident:
		if obj, tracked := w.tracked(e); tracked {
			for _, st := range cur {
				if st[obj] == clUnsettled {
					st[obj] = clSettled // escapes; the receiver inherits the obligation
				}
			}
		}
	case *ast.ParenExpr:
		w.scanExpr(e.X, cur)
	case *ast.BinaryExpr:
		if (e.Op == token.EQL || e.Op == token.NEQ) && (isNilExpr(e.X) || isNilExpr(e.Y)) {
			for _, side := range []ast.Expr{e.X, e.Y} {
				if id, ok := ast.Unparen(side).(*ast.Ident); ok {
					if _, tracked := w.tracked(id); tracked {
						continue // nil comparison is not a use
					}
				}
				w.scanExpr(side, cur)
			}
			return
		}
		w.scanExpr(e.X, cur)
		w.scanExpr(e.Y, cur)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj, tracked := w.tracked(id); tracked {
					if sel.Sel.Name == "Commit" || sel.Sel.Name == "Abort" {
						for _, st := range cur {
							st[obj] = clSettled
						}
					}
					// Msg()/Payload() read the claim without settling it.
					for _, a := range e.Args {
						w.scanExpr(a, cur)
					}
					return
				}
			}
		}
		w.scanExpr(e.Fun, cur)
		for _, a := range e.Args {
			w.scanExpr(a, cur)
		}
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, tracked := w.tracked(id); tracked {
				return // field/method read, not an escape
			}
		}
		w.scanExpr(e.X, cur)
	case *ast.UnaryExpr:
		w.scanExpr(e.X, cur)
	case *ast.StarExpr:
		w.scanExpr(e.X, cur)
	case *ast.IndexExpr:
		w.scanExpr(e.X, cur)
		w.scanExpr(e.Index, cur)
	case *ast.IndexListExpr:
		w.scanExpr(e.X, cur)
		for _, idx := range e.Indices {
			w.scanExpr(idx, cur)
		}
	case *ast.SliceExpr:
		w.scanExpr(e.X, cur)
		w.scanExpr(e.Low, cur)
		w.scanExpr(e.High, cur)
		w.scanExpr(e.Max, cur)
	case *ast.TypeAssertExpr:
		w.scanExpr(e.X, cur)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.scanExpr(el, cur)
		}
	case *ast.KeyValueExpr:
		w.scanExpr(e.Key, cur)
		w.scanExpr(e.Value, cur)
	case *ast.FuncLit:
		// Claims captured by a closure escape to it; claims created
		// inside it get their own flow analysis.
		ast.Inspect(e.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj, tracked := w.tracked(id); tracked {
					for _, st := range cur {
						if st[obj] == clUnsettled {
							st[obj] = clSettled
						}
					}
				}
			}
			return true
		})
		w.analyzeFunc(e.Type.Params, e.Body)
	}
}

// refine narrows claim statuses given that cond evaluated to val.
func (w *claimWalker) refine(cond ast.Expr, val bool, st claimState) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if val {
				w.refine(c.X, true, st)
				w.refine(c.Y, true, st)
			}
		case token.LOR:
			if !val {
				w.refine(c.X, false, st)
				w.refine(c.Y, false, st)
			}
		case token.EQL, token.NEQ:
			var idExpr ast.Expr
			switch {
			case isNilExpr(c.X):
				idExpr = c.Y
			case isNilExpr(c.Y):
				idExpr = c.X
			default:
				return
			}
			id, ok := ast.Unparen(idExpr).(*ast.Ident)
			if !ok {
				return
			}
			obj, tracked := w.tracked(id)
			if !tracked {
				return
			}
			if nilBranch := (c.Op == token.EQL) == val; nilBranch && st[obj] == clUnsettled {
				st[obj] = clNil
			}
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			w.refine(c.X, !val, st)
		}
	case *ast.Ident:
		// `claim, ok := s.ClaimX(id)`: the API contract is ok==false
		// implies claim==nil (budget refusal yields (nil, false)).
		if obj := w.objectOf(c); obj != nil && !val {
			if claimObj, known := w.okFor[obj]; known && st[claimObj] == clUnsettled {
				st[claimObj] = clNil
			}
		}
	}
}

func (w *claimWalker) isClaimCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !claimMethods[sel.Sel.Name] {
		return false
	}
	fn := calleeOf(w.info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return false
	}
	ptr, ok := sig.Results().At(0).Type().(*types.Pointer)
	return ok && isNamedType(ptr.Elem(), "engine", "Claim")
}

func claimCallName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "claim call"
}

func isNilExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil" && id.Obj == nil
}
