package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockOrder enforces the canonical mutex-acquisition order declared by
// //bsub:lockrank N annotations on mutex fields: while a ranked lock is
// held, only strictly higher-ranked locks may be acquired, directly or
// through any package-local call chain (the same source-order walk and
// call-graph propagation lockio uses for blocking-ness). Rank
// inversions are the static form of the deadlocks the chaos and
// chaos-mesh suites would otherwise have to stumble into: two goroutines
// taking `mu` and `statsMu` in opposite orders hang forever, but only
// under the right interleaving — the rank graph catches the pair on any
// path.
//
// Acquiring a mutex that is already held (same expression) is a
// self-deadlock and always flagged. Nesting that involves a ranked lock
// on either side requires both sides to be ranked, so the annotation
// set stays closed over everything that actually nests; two unranked
// mutexes may nest freely (the analyzer has no declared order to check
// them against).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition must follow //bsub:lockrank order in internal/livenode and internal/mesh",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/livenode", "internal/mesh")
	},
	Run: runLockOrder,
}

// heldLock is one currently held mutex during the source-order walk.
type heldLock struct {
	expr  string // rendered lock expression, e.g. "m.mu"
	obj   types.Object
	write bool // Lock as opposed to RLock
}

type loChecker struct {
	pass *Pass
	info *types.Info
	// acquires maps package-local functions to the mutex objects they
	// may lock, directly or transitively.
	acquires map[*types.Func]map[types.Object]bool
}

func runLockOrder(pass *Pass) {
	c := &loChecker{pass: pass, info: pass.Pkg.Info, acquires: map[*types.Func]map[types.Object]bool{}}

	// Malformed or misplaced annotations found during collection are
	// reported in the package that owns them.
	inPkg := map[string]bool{}
	for _, f := range pass.Pkg.Filenames {
		inPkg[f] = true
	}
	for _, bad := range pass.Prog.BadLockRanks {
		if inPkg[pass.Prog.Fset.Position(bad.pos).Filename] {
			pass.Reportf(bad.pos, "%s", bad.msg)
		}
	}

	type fnDecl struct {
		obj  *types.Func
		decl *ast.FuncDecl
	}
	var decls []fnDecl
	funcBodies(pass.Pkg, func(fd *ast.FuncDecl) {
		if obj, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
			decls = append(decls, fnDecl{obj, fd})
		}
	})

	// Phase 1+2: per-function "may acquire" summaries, propagated
	// through same-package calls to a fixpoint. Closure bodies are
	// excluded — a goroutine's acquisitions happen on its own stack.
	for _, d := range decls {
		set := map[types.Object]bool{}
		inspectSkippingFuncLits(d.decl.Body, func(n ast.Node) {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj, _, isAcq := c.lockAcquire(call); isAcq && obj != nil {
					set[obj] = true
				}
			}
		})
		c.acquires[d.obj] = set
	}
	for changed := true; changed; {
		changed = false
		for _, d := range decls {
			set := c.acquires[d.obj]
			inspectSkippingFuncLits(d.decl.Body, func(n ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				fn := calleeOf(c.info, call)
				if fn == nil || fn.Pkg() != pass.Pkg.Types {
					return
				}
				for obj := range c.acquires[fn] {
					if !set[obj] {
						set[obj] = true
						changed = true
					}
				}
			})
		}
	}

	// Phase 3: walk each function and closure tracking held locks.
	for _, d := range decls {
		c.walkStmts(d.decl.Body.List, map[string]heldLock{})
	}
	for _, d := range decls {
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.walkStmts(lit.Body.List, map[string]heldLock{})
				return false
			}
			return true
		})
	}
}

// lockAcquire classifies call as a Lock/RLock on a sync mutex,
// resolving the receiver to its object.
func (c *loChecker) lockAcquire(call *ast.CallExpr) (obj types.Object, write bool, ok bool) {
	recv, method, isMutex := syncCallee(c.info, call, "Mutex", "RWMutex")
	if !isMutex || (method != "Lock" && method != "RLock") {
		return nil, false, false
	}
	return resolveObj(c.info, recv), method == "Lock", true
}

// rankOf looks up the declared rank of a mutex object.
func (c *loChecker) rankOf(obj types.Object) (LockRank, bool) {
	r, ok := c.pass.Prog.LockRanks[obj]
	return r, ok
}

// lockName renders a lock for messages: the declared Type.field name
// when ranked, the walk's expression otherwise.
func (c *loChecker) lockName(obj types.Object, expr string) string {
	if r, ok := c.rankOf(obj); ok {
		return r.Name
	}
	return expr
}

// sortedHeld returns the held set in deterministic order.
func sortedHeld(held map[string]heldLock) []heldLock {
	out := make([]heldLock, 0, len(held))
	for _, h := range held {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].expr < out[j].expr })
	return out
}

// checkAcquire reports order violations for acquiring (obj, expr)
// while held locks are outstanding, then records the new lock.
func (c *loChecker) checkAcquire(pos token.Pos, obj types.Object, expr string, write bool, held map[string]heldLock) {
	for _, h := range sortedHeld(held) {
		if h.expr == expr && (write || h.write) {
			c.pass.Reportf(pos, "%s is reacquired while already held: self-deadlock", expr)
			continue
		}
		c.checkPair(pos, "", obj, h)
	}
	held[expr] = heldLock{expr: expr, obj: obj, write: write}
}

// checkPair applies the rank rules to one (acquired, held) pair. via
// names the callee when the acquisition happens inside a called
// function.
func (c *loChecker) checkPair(pos token.Pos, via string, acq types.Object, h heldLock) {
	ra, aRanked := c.rankOf(acq)
	rh, hRanked := c.rankOf(h.obj)
	prefix := ""
	if via != "" {
		prefix = "call to " + via + " acquires "
	} else {
		prefix = "acquiring "
	}
	switch {
	case aRanked && hRanked:
		if rh.Rank >= ra.Rank {
			c.pass.Reportf(pos, "%s%s (lockrank %d) while %s (lockrank %d) is held inverts the declared lock order",
				prefix, ra.Name, ra.Rank, rh.Name, rh.Rank)
		}
	case aRanked && !hRanked:
		c.pass.Reportf(pos, "%s%s (lockrank %d) while unranked mutex %s is held; annotate %s with //bsub:lockrank",
			prefix, ra.Name, ra.Rank, h.expr, h.expr)
	case !aRanked && hRanked:
		name := acqName(acq)
		c.pass.Reportf(pos, "%san unranked mutex%s while %s (lockrank %d) is held; annotate it with //bsub:lockrank",
			prefix, name, rh.Name, rh.Rank)
	}
}

func acqName(obj types.Object) string {
	if obj == nil {
		return ""
	}
	return " (" + obj.Name() + ")"
}

// checkCallSite applies the rank rules to every mutex a package-local
// callee may acquire while the caller holds locks.
func (c *loChecker) checkCallSite(call *ast.CallExpr, held map[string]heldLock) {
	if len(held) == 0 {
		return
	}
	fn := calleeOf(c.info, call)
	if fn == nil || fn.Pkg() != c.pass.Pkg.Types {
		return
	}
	set := c.acquires[fn]
	if len(set) == 0 {
		return
	}
	// Deterministic order over the callee's acquisition set.
	objs := make([]types.Object, 0, len(set))
	for obj := range set {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool {
		return c.lockName(objs[i], objs[i].Name()) < c.lockName(objs[j], objs[j].Name())
	})
	for _, obj := range objs {
		for _, h := range sortedHeld(held) {
			c.checkPair(call.Pos(), fn.Name(), obj, h)
		}
	}
}

func copyHeldLocks(held map[string]heldLock) map[string]heldLock {
	out := make(map[string]heldLock, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func (c *loChecker) walkStmts(list []ast.Stmt, held map[string]heldLock) {
	for _, s := range list {
		c.walkStmt(s, held)
	}
}

func (c *loChecker) walkStmt(s ast.Stmt, held map[string]heldLock) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if recv, method, isMutex := syncCallee(c.info, call, "Mutex", "RWMutex"); isMutex {
				expr := types.ExprString(recv)
				switch method {
				case "Lock", "RLock":
					c.checkAcquire(call.Pos(), resolveObj(c.info, recv), expr, method == "Lock", held)
				case "Unlock", "RUnlock":
					delete(held, expr)
				}
				return
			}
		}
		c.scanCalls(s.X, held)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held for the rest of the
		// body; other deferred calls run at exit. Arguments are
		// evaluated now.
		for _, a := range s.Call.Args {
			c.scanCalls(a, held)
		}
	case *ast.GoStmt:
		// The goroutine body runs on its own stack without the
		// spawner's locks; its FuncLit is walked with a clean slate.
		for _, a := range s.Call.Args {
			c.scanCalls(a, held)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scanCalls(e, held)
		}
		for _, e := range s.Lhs {
			c.scanCalls(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scanCalls(e, held)
		}
	case *ast.IncDecStmt:
		c.scanCalls(s.X, held)
	case *ast.SendStmt:
		c.scanCalls(s.Chan, held)
		c.scanCalls(s.Value, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.scanCalls(s.Cond, held)
		c.walkStmts(s.Body.List, copyHeldLocks(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyHeldLocks(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanCalls(s.Cond, held)
		}
		inner := copyHeldLocks(held)
		c.walkStmts(s.Body.List, inner)
		if s.Post != nil {
			c.walkStmt(s.Post, inner)
		}
	case *ast.RangeStmt:
		c.scanCalls(s.X, held)
		c.walkStmts(s.Body.List, copyHeldLocks(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanCalls(s.Tag, held)
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyHeldLocks(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyHeldLocks(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				inner := copyHeldLocks(held)
				if cc.Comm != nil {
					c.walkStmt(cc.Comm, inner)
				}
				c.walkStmts(cc.Body, inner)
			}
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.scanCalls(v, held)
					}
				}
			}
		}
	}
}

// scanCalls checks every package-local call in the expression against
// the held set, skipping closure bodies.
func (c *loChecker) scanCalls(e ast.Expr, held map[string]heldLock) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			c.checkCallSite(call, held)
		}
		return true
	})
}

// inspectSkippingFuncLits is lockio's closure-skipping traversal, shared
// by the summary builders.
func inspectSkippingFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
