package workload

import (
	"time"

	"bsub/internal/xrand"
)

// Source is a time-ordered stream of message-creation events, the workload
// counterpart of trace.Source: the simulator merges it with the contact
// stream without ever materializing the full workload. Next returns
// ok=false once the span is exhausted; messages arrive sorted by
// (CreatedAt, Origin) with sequential IDs.
type Source interface {
	Next() (m Message, ok bool)
}

// msgSalt decorrelates per-node message streams from the contact streams a
// caller may derive from the same root seed.
const msgSalt = 0x6a09e667f3bcc909

// nodeStream is one producing node's lazily evaluated Poisson arrival
// process: the buffered next arrival plus the node's own generator, so a
// node's message sequence is independent of every other node's.
type nodeStream struct {
	at     time.Duration // buffered next arrival
	t      float64       // arrival clock, hours
	rng    xrand.PRNG
	rate   float64 // messages per hour
	origin int32
}

// advance draws the node's next arrival; false when past the span.
func (n *nodeStream) advance(limitHours float64) bool {
	n.t += n.rng.Exp() / n.rate
	if n.t >= limitHours {
		return false
	}
	n.at = time.Duration(n.t * float64(time.Hour))
	return true
}

// Stream produces the Section VII-A message workload incrementally: one
// Poisson stream per node with a positive rate, merged through a binary
// heap on (CreatedAt, Origin). Memory is O(producing nodes); keys and
// sizes are drawn from the producing node's own stream at emission time.
type Stream struct {
	ks         *KeySet
	limitHours float64
	nodes      []nodeStream
	heap       []int32
	nextID     int
}

var _ Source = (*Stream)(nil)

// NewStream builds the streamed equivalent of GenerateMessages: rates are
// messages per hour per node (zero-rate nodes never produce), span bounds
// arrival times, and seed derives every node's independent generator.
func NewStream(ks *KeySet, rates []float64, span time.Duration, seed int64) *Stream {
	s := &Stream{ks: ks, limitHours: span.Hours()}
	for node, rate := range rates {
		if rate <= 0 {
			continue
		}
		n := nodeStream{
			rng:    xrand.New(uint64(seed) ^ msgSalt ^ uint64(uint32(node))),
			rate:   rate,
			origin: int32(node),
		}
		if n.advance(s.limitHours) {
			s.heap = append(s.heap, int32(len(s.nodes)))
			s.nodes = append(s.nodes, n)
		}
	}
	// The appends above keep heap entries in node order, but heapify anyway
	// so the invariant never depends on it.
	for i := len(s.heap)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
	return s
}

// Next pops the earliest buffered arrival, stamps it with the next
// sequential ID, draws its key and size from the producing node's stream,
// and advances that node.
func (s *Stream) Next() (Message, bool) {
	if len(s.heap) == 0 {
		return Message{}, false
	}
	n := &s.nodes[s.heap[0]]
	m := Message{
		ID:        s.nextID,
		Key:       s.ks.sampleU(n.rng.Float64()),
		Origin:    int(n.origin),
		Size:      1 + n.rng.Intn(MaxMessageBytes),
		CreatedAt: n.at,
	}
	s.nextID++
	if n.advance(s.limitHours) {
		s.siftDown(0)
	} else {
		last := len(s.heap) - 1
		s.heap[0] = s.heap[last]
		s.heap = s.heap[:last]
		if last > 0 {
			s.siftDown(0)
		}
	}
	return m, true
}

// less orders heap entries by (CreatedAt, Origin) — GenerateMessages'
// historical sort key. Origins are distinct, so the order is total.
func (s *Stream) less(x, y int32) bool {
	nx, ny := &s.nodes[x], &s.nodes[y]
	if nx.at != ny.at {
		return nx.at < ny.at
	}
	return nx.origin < ny.origin
}

func (s *Stream) siftDown(i int) {
	for {
		l := 2*i + 1
		if l >= len(s.heap) {
			return
		}
		least := l
		if r := l + 1; r < len(s.heap) && s.less(s.heap[r], s.heap[l]) {
			least = r
		}
		if !s.less(s.heap[least], s.heap[i]) {
			return
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		i = least
	}
}

// Collect drains a Source into a slice. Tests and small fixtures use it;
// at scale the simulator consumes the Source directly.
func Collect(s Source) []Message {
	var out []Message
	for {
		m, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, m)
	}
}

// sliceSource replays pre-generated messages.
type sliceSource struct {
	msgs []Message
	i    int
}

// SliceSource wraps a materialized, CreatedAt-sorted workload as a Source.
func SliceSource(msgs []Message) Source { return &sliceSource{msgs: msgs} }

func (s *sliceSource) Next() (Message, bool) {
	if s.i >= len(s.msgs) {
		return Message{}, false
	}
	m := s.msgs[s.i]
	s.i++
	return m, true
}
