package workload

import (
	"math/rand"
	"testing"
	"time"
)

// TestStreamMatchesGenerate: collecting a stream must reproduce
// GenerateMessages exactly for the same derived seed.
func TestStreamMatchesGenerate(t *testing.T) {
	ks := NewTrendKeySet()
	rates := []float64{2, 0, 5, 1, 3}
	span := 48 * time.Hour

	rng := rand.New(rand.NewSource(9))
	seed := rand.New(rand.NewSource(9)).Int63()
	want := GenerateMessages(ks, rates, span, rng)
	got := Collect(NewStream(ks, rates, span, seed))
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d messages, GenerateMessages %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || got[i].Key != want[i].Key ||
			got[i].Origin != want[i].Origin || got[i].Size != want[i].Size ||
			got[i].CreatedAt != want[i].CreatedAt {
			t.Fatalf("message %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestStreamOrderAndIDs: arrivals must come out sorted by
// (CreatedAt, Origin) with dense sequential IDs, and a zero-rate node must
// never produce.
func TestStreamOrderAndIDs(t *testing.T) {
	ks := NewTrendKeySet()
	s := NewStream(ks, []float64{3, 0, 3}, 24*time.Hour, 4)
	id := 0
	var prev Message
	for {
		m, ok := s.Next()
		if !ok {
			break
		}
		if m.ID != id {
			t.Fatalf("ID %d, want %d", m.ID, id)
		}
		if m.Origin == 1 {
			t.Fatal("zero-rate node produced a message")
		}
		if m.Size < 1 || m.Size > MaxMessageBytes {
			t.Fatalf("size %d out of [1,%d]", m.Size, MaxMessageBytes)
		}
		if id > 0 && (m.CreatedAt < prev.CreatedAt ||
			(m.CreatedAt == prev.CreatedAt && m.Origin <= prev.Origin)) {
			t.Fatalf("out of order: %+v after %+v", m, prev)
		}
		prev = m
		id++
	}
	if id == 0 {
		t.Fatal("stream produced nothing")
	}
}

// TestSliceSource round-trips a materialized workload.
func TestSliceSource(t *testing.T) {
	msgs := []Message{
		{ID: 0, Key: "a", Origin: 0, Size: 10, CreatedAt: time.Minute},
		{ID: 1, Key: "b", Origin: 1, Size: 20, CreatedAt: time.Hour},
	}
	got := Collect(SliceSource(msgs))
	if len(got) != 2 || got[0].Key != "a" || got[1].Key != "b" {
		t.Fatalf("round trip lost messages: %+v", got)
	}
}

// TestStreamSeedIndependence: different seeds must give different
// workloads; the same seed must reproduce the sequence.
func TestStreamSeedIndependence(t *testing.T) {
	ks := NewTrendKeySet()
	rates := []float64{4, 4}
	a := Collect(NewStream(ks, rates, 24*time.Hour, 1))
	b := Collect(NewStream(ks, rates, 24*time.Hour, 1))
	c := Collect(NewStream(ks, rates, 24*time.Hour, 2))
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i].CreatedAt != b[i].CreatedAt || a[i].Key != b[i].Key {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	if len(a) == len(c) {
		same := true
		for i := range a {
			if a[i].CreatedAt != c[i].CreatedAt {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}
