// Package workload implements the Section VII-A workload model: a set of
// Twitter-Trend-like keys with a skewed popularity distribution (Table II),
// per-node interests drawn by key weight, and message generation whose rate
// scales with a node's centrality ("the higher the centrality, the higher
// the message generation rate").
//
// The paper harvested 38 trend keys from the Twitter Trend search engine
// for 16–22 Nov 2009; those exact strings are unavailable offline, so
// KeySet ships a frozen list of 38 plausible trend strings whose weights
// reproduce the published head of the distribution (0.132, 0.103, 0.0887,
// 0.0739) with a Zipf-like tail normalized to one. Only the weights matter
// to the protocol; the strings are opaque keys.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Key identifies message content: "messages are identified by strings that
// summarize their contents, which are called keys".
type Key = string

// trendKeys is the frozen 38-key population standing in for the paper's
// one-week Twitter Trend crawl. The first four items carry the Table II
// head weights.
var trendKeys = []Key{
	"NewMoon", "Twitter'sNew", "funnybutnotcool", "openwebawards",
	"Thanksgiving", "MichaelJackson", "Phillies", "GoldenGlobes",
	"BlackFriday", "SwineFlu", "TigerWoods", "NewMoonPremiere",
	"AdamLambert", "Chrome0S", "ClimateGate", "Avatar",
	"CyberMonday", "HealthCare", "XboxLive", "LeonaLewis",
	"JohnMayer", "Twilight", "ThisIsIt", "WorldCupDraw",
	"SnowLeopard", "Kindle", "Modern Warfare", "LadyGaga",
	"TaylorSwift", "Yankees", "Glee", "Eclipse",
	"iPhoneApps", "Facebook", "Fireflies", "OneRepublic",
	"Alicia Keys", "Pandemic",
}

// tableIIHead is the published probability of the top-4 keys (Table II).
var tableIIHead = []float64{0.132, 0.103, 0.0887, 0.0739}

// KeySet is a weighted key population.
type KeySet struct {
	keys    []Key
	weights []float64 // normalized to sum 1
	cum     []float64 // cumulative weights for sampling
}

// NewTrendKeySet returns the paper's 38-key population: head weights from
// Table II, Zipf(1.0) tail rescaled so the total is 1.
func NewTrendKeySet() *KeySet {
	ks, err := NewKeySet(trendKeys, trendWeights())
	if err != nil {
		// The frozen inputs are valid by construction.
		panic(err)
	}
	return ks
}

// NewKeySet builds a key set from parallel key and weight slices. Weights
// must be positive; they are normalized to sum to one.
func NewKeySet(keys []Key, weights []float64) (*KeySet, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("workload: empty key set")
	}
	if len(keys) != len(weights) {
		return nil, fmt.Errorf("workload: %d keys but %d weights", len(keys), len(weights))
	}
	seen := make(map[Key]struct{}, len(keys))
	total := 0.0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("workload: weight %d (%g) must be positive and finite", i, w)
		}
		if _, dup := seen[keys[i]]; dup {
			return nil, fmt.Errorf("workload: duplicate key %q", keys[i])
		}
		seen[keys[i]] = struct{}{}
		total += w
	}
	ks := &KeySet{
		keys:    append([]Key(nil), keys...),
		weights: make([]float64, len(weights)),
		cum:     make([]float64, len(weights)),
	}
	run := 0.0
	for i, w := range weights {
		ks.weights[i] = w / total
		run += w / total
		ks.cum[i] = run
	}
	ks.cum[len(ks.cum)-1] = 1 // absorb rounding
	return ks, nil
}

// Len returns the number of keys.
func (ks *KeySet) Len() int { return len(ks.keys) }

// Keys returns a copy of the key strings.
func (ks *KeySet) Keys() []Key { return append([]Key(nil), ks.keys...) }

// Weight returns the normalized weight of key index i.
func (ks *KeySet) Weight(i int) float64 { return ks.weights[i] }

// Key returns key index i.
func (ks *KeySet) Key(i int) Key { return ks.keys[i] }

// Sample draws one key according to the weight distribution.
func (ks *KeySet) Sample(rng *rand.Rand) Key { return ks.sampleU(rng.Float64()) }

// sampleU maps a uniform draw u in [0, 1) to a key by inverse CDF.
func (ks *KeySet) sampleU(u float64) Key {
	lo, hi := 0, len(ks.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ks.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return ks.keys[lo]
}

// MeanKeyBytes returns the mean key length in bytes; the paper reports 11.5
// bytes for its crawl and uses it in the memory comparison.
func (ks *KeySet) MeanKeyBytes() float64 {
	total := 0
	for _, k := range ks.keys {
		total += len(k)
	}
	return float64(total) / float64(len(ks.keys))
}

// trendWeights builds Table II's head followed by a Zipf tail.
func trendWeights() []float64 {
	out := make([]float64, len(trendKeys))
	copy(out, tableIIHead)
	headSum := 0.0
	for _, w := range tableIIHead {
		headSum += w
	}
	// Zipf(1.0) tail over the remaining keys, scaled to the leftover mass,
	// capped so the tail stays below the head.
	tail := len(trendKeys) - len(tableIIHead)
	zipfSum := 0.0
	for r := 1; r <= tail; r++ {
		zipfSum += 1 / float64(r+4)
	}
	leftover := 1 - headSum
	for r := 1; r <= tail; r++ {
		out[len(tableIIHead)+r-1] = leftover * (1 / float64(r+4)) / zipfSum
	}
	return out
}

const (
	// MaxMessageBytes is the Twitter-style cap: "Messages have a maximum
	// size of 140 bytes".
	MaxMessageBytes = 140
	// DefaultBaseRatePerHour is the paper's minimum message generation
	// rate: 1/30 messages per minute = 2 per hour for the least central
	// node.
	DefaultBaseRatePerHour = 2.0
)

// Interests assigns each node exactly one interest key ("we assume that
// each node is interested in only one key"), drawn by weight.
func Interests(ks *KeySet, nodes int, rng *rand.Rand) []Key {
	out := make([]Key, nodes)
	for i := range out {
		out[i] = ks.Sample(rng)
	}
	return out
}

// InterestSets assigns each node up to perNode distinct interests drawn by
// weight — the multi-interest side of the paper's multi-key extension.
// Every node receives at least one interest.
func InterestSets(ks *KeySet, nodes, perNode int, rng *rand.Rand) [][]Key {
	if perNode < 1 {
		perNode = 1
	}
	out := make([][]Key, nodes)
	for i := range out {
		n := 1 + rng.Intn(perNode)
		set := make([]Key, 0, n)
		seen := make(map[Key]struct{}, n)
		for len(set) < n {
			k := ks.Sample(rng)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			set = append(set, k)
		}
		out[i] = set
	}
	return out
}

// AttachExtraKeys decorates generated messages with up to extraPerMsg
// additional distinct descriptive keys each (multi-key extension), drawn
// by weight. It mutates msgs in place and returns it.
func AttachExtraKeys(msgs []Message, ks *KeySet, extraPerMsg int, rng *rand.Rand) []Message {
	if extraPerMsg < 1 {
		return msgs
	}
	for i := range msgs {
		n := rng.Intn(extraPerMsg + 1)
		if n == 0 {
			continue
		}
		seen := map[Key]struct{}{msgs[i].Key: {}}
		for len(msgs[i].Extra) < n {
			k := ks.Sample(rng)
			if _, dup := seen[k]; dup {
				// Tolerate small key sets: give up when the population is
				// nearly exhausted rather than spinning.
				if len(seen) >= ks.Len() {
					break
				}
				continue
			}
			seen[k] = struct{}{}
			msgs[i].Extra = append(msgs[i].Extra, k)
		}
	}
	return msgs
}

// Message is a content-addressed message: a key naming its content plus a
// payload size (the simulator does not materialize bodies).
//
// The paper scopes its presentation to one key per message but notes that
// "it is straightforward to extend the analysis to multi-key descriptions'
// cases"; Extra carries the additional descriptive keys of that extension.
type Message struct {
	ID        int
	Key       Key   // primary content key
	Extra     []Key // additional descriptive keys (multi-key extension)
	Origin    int   // producing node
	Size      int   // bytes, uniform in [1, MaxMessageBytes]
	CreatedAt time.Duration
}

// MatchKeys returns every key describing the message: the primary key
// followed by the extras.
func (m Message) MatchKeys() []Key {
	if len(m.Extra) == 0 {
		return []Key{m.Key}
	}
	out := make([]Key, 0, 1+len(m.Extra))
	out = append(out, m.Key)
	return append(out, m.Extra...)
}

// Rates converts per-node centralities to message generation rates
// (messages per hour) per Section VII-A: R_i = R_min * C_i / C_min, where
// R_min is baseRatePerHour at the smallest positive centrality. Nodes with
// zero centrality never generate.
func Rates(centrality []float64, baseRatePerHour float64) ([]float64, error) {
	if baseRatePerHour <= 0 {
		return nil, fmt.Errorf("workload: base rate must be positive, got %g", baseRatePerHour)
	}
	minC := math.Inf(1)
	for _, c := range centrality {
		if c > 0 && c < minC {
			minC = c
		}
	}
	if math.IsInf(minC, 1) {
		return nil, fmt.Errorf("workload: all centralities are zero")
	}
	out := make([]float64, len(centrality))
	for i, c := range centrality {
		out[i] = baseRatePerHour * c / minC
	}
	return out, nil
}

// GenerateMessages draws each node's Poisson message arrivals over span,
// assigning keys by weight and sizes uniform in [1, MaxMessageBytes]. The
// result is sorted by creation time with sequential IDs. It is the
// materialized view of Stream: the stream seed is drawn from rng, then all
// randomness comes from per-node derived generators (see NewStream), so
// streamed and collected generation produce the identical sequence.
func GenerateMessages(ks *KeySet, rates []float64, span time.Duration, rng *rand.Rand) []Message {
	out := Collect(NewStream(ks, rates, span, rng.Int63()))
	if out == nil {
		out = []Message{}
	}
	return out
}
