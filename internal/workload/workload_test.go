package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTrendKeySetShape(t *testing.T) {
	ks := NewTrendKeySet()
	if ks.Len() != 38 {
		t.Fatalf("key count = %d, want the paper's 38", ks.Len())
	}
	// Table II head.
	wantHead := []float64{0.132, 0.103, 0.0887, 0.0739}
	for i, want := range wantHead {
		if math.Abs(ks.Weight(i)-want) > 1e-9 {
			t.Errorf("weight[%d] = %g, want Table II's %g", i, ks.Weight(i), want)
		}
	}
	// Weights sum to 1 and are non-increasing through the tail.
	sum := 0.0
	for i := 0; i < ks.Len(); i++ {
		sum += ks.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %g", sum)
	}
	for i := len(wantHead); i < ks.Len(); i++ {
		if ks.Weight(i) > ks.Weight(len(wantHead)-1)+1e-12 {
			t.Errorf("tail weight %d (%g) above head minimum", i, ks.Weight(i))
		}
	}
	// Mean key length should be in the neighbourhood of the paper's 11.5 B.
	if mean := ks.MeanKeyBytes(); mean < 7 || mean > 16 {
		t.Errorf("mean key length %.1f B implausibly far from the paper's 11.5 B", mean)
	}
}

func TestNewKeySetValidation(t *testing.T) {
	tests := []struct {
		name    string
		keys    []Key
		weights []float64
	}{
		{name: "empty", keys: nil, weights: nil},
		{name: "length mismatch", keys: []Key{"a"}, weights: []float64{1, 2}},
		{name: "zero weight", keys: []Key{"a", "b"}, weights: []float64{1, 0}},
		{name: "negative weight", keys: []Key{"a", "b"}, weights: []float64{1, -1}},
		{name: "NaN weight", keys: []Key{"a", "b"}, weights: []float64{1, math.NaN()}},
		{name: "inf weight", keys: []Key{"a", "b"}, weights: []float64{1, math.Inf(1)}},
		{name: "duplicate key", keys: []Key{"a", "a"}, weights: []float64{1, 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewKeySet(tt.keys, tt.weights); err == nil {
				t.Error("invalid key set accepted")
			}
		})
	}
}

func TestSampleFollowsWeights(t *testing.T) {
	ks, err := NewKeySet([]Key{"hot", "cold"}, []float64{0.9, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	hot := 0
	n := 20000
	for i := 0; i < n; i++ {
		if ks.Sample(rng) == "hot" {
			hot++
		}
	}
	frac := float64(hot) / float64(n)
	if math.Abs(frac-0.9) > 0.02 {
		t.Errorf("hot sampled %.3f of the time, want ~0.9", frac)
	}
}

func TestSampleTrendHead(t *testing.T) {
	ks := NewTrendKeySet()
	rng := rand.New(rand.NewSource(2))
	counts := make(map[Key]int)
	n := 50000
	for i := 0; i < n; i++ {
		counts[ks.Sample(rng)]++
	}
	top := ks.Key(0)
	frac := float64(counts[top]) / float64(n)
	if math.Abs(frac-0.132) > 0.01 {
		t.Errorf("top key sampled %.3f, want Table II's 0.132", frac)
	}
}

func TestInterests(t *testing.T) {
	ks := NewTrendKeySet()
	rng := rand.New(rand.NewSource(3))
	in := Interests(ks, 79, rng)
	if len(in) != 79 {
		t.Fatalf("got %d interests", len(in))
	}
	valid := make(map[Key]struct{})
	for _, k := range ks.Keys() {
		valid[k] = struct{}{}
	}
	for i, k := range in {
		if _, ok := valid[k]; !ok {
			t.Errorf("node %d interest %q not in key set", i, k)
		}
	}
}

func TestRates(t *testing.T) {
	centrality := []float64{0.1, 0.2, 0.4, 0}
	rates, err := Rates(centrality, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 8, 0}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-12 {
			t.Errorf("rate[%d] = %g, want %g", i, rates[i], want[i])
		}
	}
	if _, err := Rates(centrality, 0); err == nil {
		t.Error("zero base rate accepted")
	}
	if _, err := Rates([]float64{0, 0}, 2); err == nil {
		t.Error("all-zero centrality accepted")
	}
}

func TestGenerateMessages(t *testing.T) {
	ks := NewTrendKeySet()
	rng := rand.New(rand.NewSource(4))
	rates := []float64{2, 4, 0}
	span := 50 * time.Hour
	msgs := GenerateMessages(ks, rates, span, rng)

	if len(msgs) == 0 {
		t.Fatal("no messages generated")
	}
	// Expected total: (2+4) * 50 = 300.
	if math.Abs(float64(len(msgs))-300) > 75 {
		t.Errorf("generated %d messages, expected about 300", len(msgs))
	}
	var from2 int
	for i, m := range msgs {
		if m.ID != i {
			t.Fatalf("IDs not sequential at %d", i)
		}
		if i > 0 && msgs[i].CreatedAt < msgs[i-1].CreatedAt {
			t.Fatalf("messages not time-sorted at %d", i)
		}
		if m.Size < 1 || m.Size > MaxMessageBytes {
			t.Errorf("message %d size %d out of [1,%d]", i, m.Size, MaxMessageBytes)
		}
		if m.CreatedAt < 0 || m.CreatedAt >= span {
			t.Errorf("message %d created at %v outside span", i, m.CreatedAt)
		}
		if m.Origin == 2 {
			from2++
		}
	}
	if from2 != 0 {
		t.Errorf("zero-rate node produced %d messages", from2)
	}
}

func TestGenerateMessagesRateProportionality(t *testing.T) {
	ks := NewTrendKeySet()
	rng := rand.New(rand.NewSource(5))
	msgs := GenerateMessages(ks, []float64{1, 5}, 200*time.Hour, rng)
	byOrigin := map[int]int{}
	for _, m := range msgs {
		byOrigin[m.Origin]++
	}
	ratio := float64(byOrigin[1]) / float64(byOrigin[0])
	if ratio < 3.5 || ratio > 7 {
		t.Errorf("rate-5 node produced %.1fx the messages of rate-1 node, want ~5x", ratio)
	}
}

// Property: sampling always returns a key from the set.
func TestSampleMembershipProperty(t *testing.T) {
	ks := NewTrendKeySet()
	valid := make(map[Key]struct{})
	for _, k := range ks.Keys() {
		valid[k] = struct{}{}
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			if _, ok := valid[ks.Sample(rng)]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: arbitrary positive weights normalize and sample without error.
func TestNewKeySetNormalizesProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]Key, len(raw))
		weights := make([]float64, len(raw))
		for i, r := range raw {
			keys[i] = Key(rune('a'+i%26)) + Key(rune('0'+i/26%10)) + Key(rune('0'+i/260))
			weights[i] = float64(r%1000) + 1
		}
		ks, err := NewKeySet(keys, weights)
		if err != nil {
			return false
		}
		sum := 0.0
		for i := 0; i < ks.Len(); i++ {
			sum += ks.Weight(i)
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSample(b *testing.B) {
	ks := NewTrendKeySet()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ks.Sample(rng)
	}
}

func TestMatchKeys(t *testing.T) {
	single := Message{ID: 0, Key: "a"}
	if got := single.MatchKeys(); len(got) != 1 || got[0] != "a" {
		t.Errorf("single-key MatchKeys = %v", got)
	}
	multi := Message{ID: 1, Key: "a", Extra: []Key{"b", "c"}}
	got := multi.MatchKeys()
	want := []Key{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("MatchKeys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MatchKeys[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestInterestSets(t *testing.T) {
	ks := NewTrendKeySet()
	rng := rand.New(rand.NewSource(6))
	sets := InterestSets(ks, 50, 3, rng)
	if len(sets) != 50 {
		t.Fatalf("got %d sets", len(sets))
	}
	sawMulti := false
	for i, set := range sets {
		if len(set) < 1 || len(set) > 3 {
			t.Errorf("node %d has %d interests, want 1..3", i, len(set))
		}
		if len(set) > 1 {
			sawMulti = true
		}
		seen := make(map[Key]struct{})
		for _, k := range set {
			if _, dup := seen[k]; dup {
				t.Errorf("node %d has duplicate interest %q", i, k)
			}
			seen[k] = struct{}{}
		}
	}
	if !sawMulti {
		t.Error("no node received multiple interests")
	}
	// perNode below 1 clamps to 1.
	for _, set := range InterestSets(ks, 5, 0, rng) {
		if len(set) != 1 {
			t.Errorf("clamped set has %d interests", len(set))
		}
	}
}

func TestAttachExtraKeys(t *testing.T) {
	ks := NewTrendKeySet()
	rng := rand.New(rand.NewSource(7))
	rates := []float64{5}
	msgs := GenerateMessages(ks, rates, 100*time.Hour, rng)
	msgs = AttachExtraKeys(msgs, ks, 2, rng)
	sawExtra := false
	for _, m := range msgs {
		if len(m.Extra) > 2 {
			t.Errorf("message %d has %d extra keys", m.ID, len(m.Extra))
		}
		if len(m.Extra) > 0 {
			sawExtra = true
		}
		seen := map[Key]struct{}{m.Key: {}}
		for _, k := range m.Extra {
			if _, dup := seen[k]; dup {
				t.Errorf("message %d repeats key %q", m.ID, k)
			}
			seen[k] = struct{}{}
		}
	}
	if !sawExtra {
		t.Error("no message received extra keys")
	}
	// extraPerMsg below 1 is a no-op.
	before := len(msgs[0].Extra)
	msgs = AttachExtraKeys(msgs, ks, 0, rng)
	if len(msgs[0].Extra) != before {
		t.Error("extraPerMsg=0 mutated messages")
	}
}

func TestAttachExtraKeysTinyPopulation(t *testing.T) {
	ks, err := NewKeySet([]Key{"only", "other"}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	msgs := []Message{{ID: 0, Key: "only"}}
	msgs = AttachExtraKeys(msgs, ks, 5, rng)
	if len(msgs[0].Extra) > 1 {
		t.Errorf("extra keys %v exceed the population", msgs[0].Extra)
	}
}
