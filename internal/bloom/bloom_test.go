package bloom

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestFilterInsertContains(t *testing.T) {
	f := MustNewFilter(256, 4)
	keys := []string{"NewMoon", "Twitter'sNew", "funnybutnotcool", "openwebawards"}
	for _, k := range keys {
		if f.Contains(k) {
			t.Errorf("empty filter claims to contain %q", k)
		}
	}
	for _, k := range keys {
		f.Insert(k)
	}
	for _, k := range keys {
		if !f.Contains(k) {
			t.Errorf("filter lost inserted key %q (false negative)", k)
		}
	}
}

func TestFilterEmptyNeverContains(t *testing.T) {
	f := MustNewFilter(64, 3)
	for _, k := range []string{"", "a", "b", "zzz"} {
		if f.Contains(k) {
			t.Errorf("empty filter contains %q", k)
		}
	}
}

func TestFilterMerge(t *testing.T) {
	a := MustNewFilter(256, 4)
	b := MustNewFilter(256, 4)
	a.Insert("k0")
	b.Insert("k1")
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	for _, k := range []string{"k0", "k1"} {
		if !a.Contains(k) {
			t.Errorf("merged filter lost %q", k)
		}
	}
	if !b.Contains("k1") || b.Contains("k0") {
		t.Error("merge modified the source filter")
	}
}

func TestFilterMergeGeometryMismatch(t *testing.T) {
	a := MustNewFilter(256, 4)
	tests := []struct{ m, k int }{{128, 4}, {256, 3}, {64, 2}}
	for _, tt := range tests {
		b := MustNewFilter(tt.m, tt.k)
		if err := a.Merge(b); err == nil {
			t.Errorf("merge with geometry (%d,%d) succeeded, want error", tt.m, tt.k)
		}
	}
}

func TestFilterSetBitsAndFillRatio(t *testing.T) {
	f := MustNewFilter(100, 2)
	if f.SetBits() != 0 || f.FillRatio() != 0 {
		t.Fatalf("empty filter: SetBits=%d FillRatio=%f", f.SetBits(), f.FillRatio())
	}
	f.Insert("x")
	got := f.SetBits()
	if got < 1 || got > 2 {
		t.Errorf("one key, k=2: SetBits=%d, want 1 or 2", got)
	}
	if want := float64(got) / 100; f.FillRatio() != want {
		t.Errorf("FillRatio=%f, want %f", f.FillRatio(), want)
	}
}

func TestFilterReset(t *testing.T) {
	f := MustNewFilter(128, 4)
	f.Insert("gone")
	f.Reset()
	if f.Contains("gone") {
		t.Error("reset filter still contains key")
	}
	if f.SetBits() != 0 {
		t.Errorf("reset filter has %d set bits", f.SetBits())
	}
}

func TestFilterClone(t *testing.T) {
	f := MustNewFilter(128, 4)
	f.Insert("orig")
	c := f.Clone()
	c.Insert("extra")
	if f.Contains("extra") && !sameBits(f, c) == false {
		// "extra" may collide into orig's bits; the real check is below.
		_ = f
	}
	if !c.Contains("orig") {
		t.Error("clone lost original key")
	}
	// Mutating the clone must not mutate the original's bit array.
	f2 := MustNewFilter(128, 4)
	f2.Insert("orig")
	if f.SetBits() != f2.SetBits() {
		t.Errorf("original mutated by clone insert: %d vs %d set bits", f.SetBits(), f2.SetBits())
	}
}

func sameBits(a, b *Filter) bool {
	if a.M() != b.M() {
		return false
	}
	for i := 0; i < a.M(); i++ {
		if a.Bit(i) != b.Bit(i) {
			return false
		}
	}
	return true
}

// Property: no false negatives — every inserted key is always found.
func TestFilterNoFalseNegativesProperty(t *testing.T) {
	prop := func(keys []string, probe string) bool {
		f := MustNewFilter(512, 4)
		for _, k := range keys {
			f.Insert(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: merge is an upper bound — the merged filter contains everything
// either input contained.
func TestFilterMergeSupersetProperty(t *testing.T) {
	prop := func(ka, kb []string) bool {
		a := MustNewFilter(512, 4)
		b := MustNewFilter(512, 4)
		for _, k := range ka {
			a.Insert(k)
		}
		for _, k := range kb {
			b.Insert(k)
		}
		if err := a.Merge(b); err != nil {
			return false
		}
		for _, k := range append(ka, kb...) {
			if !a.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// The paper's worked example (Fig. 2): with 38 distinct keys in a 256-bit
// filter with 4 hashes, the theoretical worst-case FPR is about 0.04. The
// observed estimate should be in the same ballpark.
func TestFilterPaperSettingFPR(t *testing.T) {
	f := MustNewFilter(256, 4)
	for i := 0; i < 38; i++ {
		f.Insert(fmt.Sprintf("trend-key-%02d", i))
	}
	est := f.EstimatedFPR()
	theory := math.Pow(1-math.Exp(-4*38.0/256), 4)
	if est < theory/4 || est > theory*4 {
		t.Errorf("estimated FPR %.4f too far from theoretical %.4f", est, theory)
	}
	if theory > 0.06 {
		t.Errorf("theoretical FPR %.4f should be near the paper's 0.04", theory)
	}
}

// Measured FPR over many absent probes should be near theory.
func TestFilterMeasuredFPR(t *testing.T) {
	f := MustNewFilter(1024, 4)
	n := 100
	for i := 0; i < n; i++ {
		f.Insert(fmt.Sprintf("member-%d", i))
	}
	fp := 0
	probes := 20000
	for i := 0; i < probes; i++ {
		if f.Contains(fmt.Sprintf("absent-%d", i)) {
			fp++
		}
	}
	measured := float64(fp) / float64(probes)
	theory := math.Pow(1-math.Exp(-4*float64(n)/1024), 4)
	if measured > theory*2.5+0.005 {
		t.Errorf("measured FPR %.4f far above theory %.4f", measured, theory)
	}
}

func BenchmarkFilterInsert(b *testing.B) {
	f := MustNewFilter(256, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Insert("openwebawards")
	}
}

func BenchmarkFilterContains(b *testing.B) {
	f := MustNewFilter(256, 4)
	f.Insert("openwebawards")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Contains("openwebawards")
	}
}
