package bloom

import (
	"errors"
	"fmt"

	"bsub/internal/hashkit"
)

// ErrAbsent is returned by CountingFilter.Delete when the key's bits are not
// all set, i.e. the key cannot have been inserted.
var ErrAbsent = errors.New("bloom: key not present")

// CountingFilter is the Counting Bloom filter of Section III ([22] in the
// paper): each bit carries a counter holding the number of keys associated
// with it, enabling deletion. Counters saturate at the maximum uint16 value
// rather than overflowing.
type CountingFilter struct {
	hasher   hashkit.Hasher
	counters []uint16
	scratch  []uint32
}

// NewCounting returns an empty Counting Bloom filter with an m-counter
// vector and k hash functions.
func NewCounting(m, k int) (*CountingFilter, error) {
	hasher, err := hashkit.New(m, k)
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	return &CountingFilter{
		hasher:   hasher,
		counters: make([]uint16, m),
		scratch:  make([]uint32, 0, k),
	}, nil
}

// MustNewCounting is NewCounting for parameters known to be valid; it panics
// on invalid input.
func MustNewCounting(m, k int) *CountingFilter {
	f, err := NewCounting(m, k)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the counter-vector length.
func (f *CountingFilter) M() int { return f.hasher.M() }

// K returns the number of hash functions.
func (f *CountingFilter) K() int { return f.hasher.K() }

// Insert adds key, incrementing the counters of its hashed bits. When
// double hashing maps a key to the same position more than once the counter
// is incremented once per hash, matching the delete path.
func (f *CountingFilter) Insert(key string) {
	f.scratch = f.hasher.Positions(f.scratch[:0], key)
	for _, p := range f.scratch {
		if f.counters[p] < ^uint16(0) {
			f.counters[p]++
		}
	}
}

// Delete removes one insertion of key, decrementing the counters of its
// hashed bits. A bit is reset once its counter reaches 0. Deleting a key
// whose bits are not all set returns ErrAbsent and leaves the filter
// unchanged.
func (f *CountingFilter) Delete(key string) error {
	f.scratch = f.hasher.Positions(f.scratch[:0], key)
	for _, p := range f.scratch {
		if f.counters[p] == 0 {
			return fmt.Errorf("delete %q: %w", key, ErrAbsent)
		}
	}
	for _, p := range f.scratch {
		f.counters[p]--
	}
	return nil
}

// Contains reports whether key may be in the filter.
func (f *CountingFilter) Contains(key string) bool {
	f.scratch = f.hasher.Positions(f.scratch[:0], key)
	for _, p := range f.scratch {
		if f.counters[p] == 0 {
			return false
		}
	}
	return true
}

// Counter returns the counter value at position p; p must be in [0, M).
func (f *CountingFilter) Counter(p int) uint16 { return f.counters[p] }

// SetBits returns the number of positions with non-zero counters.
func (f *CountingFilter) SetBits() int {
	n := 0
	for _, c := range f.counters {
		if c > 0 {
			n++
		}
	}
	return n
}

// FillRatio returns the ratio of non-zero counters to vector length.
func (f *CountingFilter) FillRatio() float64 {
	return float64(f.SetBits()) / float64(f.M())
}

// ToFilter projects the counting filter onto a plain Bloom filter with the
// same geometry ("ripping the counters", Section V-D).
func (f *CountingFilter) ToFilter() *Filter {
	out := MustNewFilter(f.M(), f.K())
	for p, c := range f.counters {
		if c > 0 {
			out.SetBit(p)
		}
	}
	return out
}
