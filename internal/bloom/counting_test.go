package bloom

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestCountingInsertContainsDelete(t *testing.T) {
	f := MustNewCounting(256, 4)
	f.Insert("k0")
	f.Insert("k1")
	if !f.Contains("k0") || !f.Contains("k1") {
		t.Fatal("counting filter lost inserted keys")
	}
	if err := f.Delete("k0"); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if !f.Contains("k1") {
		t.Error("deleting k0 removed k1")
	}
}

func TestCountingDeleteAbsent(t *testing.T) {
	f := MustNewCounting(256, 4)
	f.Insert("present")
	err := f.Delete("definitely-absent-key")
	if err == nil {
		// Possible only via false positive; with one key in 256 bits this
		// would be astronomically unlikely for this fixed probe.
		t.Fatal("delete of absent key succeeded")
	}
	if !errors.Is(err, ErrAbsent) {
		t.Errorf("error %v does not wrap ErrAbsent", err)
	}
	if !f.Contains("present") {
		t.Error("failed delete corrupted the filter")
	}
}

func TestCountingDeleteRestoresEmpty(t *testing.T) {
	f := MustNewCounting(128, 3)
	keys := []string{"a", "b", "c", "d"}
	for _, k := range keys {
		f.Insert(k)
	}
	for _, k := range keys {
		if err := f.Delete(k); err != nil {
			t.Fatalf("delete %q: %v", k, err)
		}
	}
	if f.SetBits() != 0 {
		t.Errorf("after deleting all keys, %d counters remain non-zero", f.SetBits())
	}
}

func TestCountingMultiInsert(t *testing.T) {
	f := MustNewCounting(64, 2)
	f.Insert("dup")
	f.Insert("dup")
	if err := f.Delete("dup"); err != nil {
		t.Fatalf("first delete: %v", err)
	}
	if !f.Contains("dup") {
		t.Error("one of two insertions should survive a single delete")
	}
	if err := f.Delete("dup"); err != nil {
		t.Fatalf("second delete: %v", err)
	}
	if f.Contains("dup") {
		t.Error("key survives after deleting both insertions")
	}
}

func TestCountingToFilter(t *testing.T) {
	cf := MustNewCounting(256, 4)
	cf.Insert("x")
	cf.Insert("y")
	bf := cf.ToFilter()
	if !bf.Contains("x") || !bf.Contains("y") {
		t.Error("projected filter lost keys")
	}
	if bf.SetBits() != cf.SetBits() {
		t.Errorf("projection changed set-bit count: %d vs %d", bf.SetBits(), cf.SetBits())
	}
}

func TestCountingSaturation(t *testing.T) {
	f := MustNewCounting(1, 1)
	for i := 0; i < 70000; i++ {
		f.Insert("k")
	}
	if f.Counter(0) != ^uint16(0) {
		t.Errorf("counter = %d, want saturation at %d", f.Counter(0), ^uint16(0))
	}
}

// Property: insert followed by delete of the same key leaves the set-bit
// population unchanged.
func TestCountingInsertDeleteInverseProperty(t *testing.T) {
	prop := func(base []string, key string) bool {
		f := MustNewCounting(512, 4)
		for _, k := range base {
			f.Insert(k)
		}
		before := make([]uint16, 512)
		for i := range before {
			before[i] = f.Counter(i)
		}
		f.Insert(key)
		if err := f.Delete(key); err != nil {
			return false
		}
		for i := range before {
			if f.Counter(i) != before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: no false negatives for the counting variant either.
func TestCountingNoFalseNegativesProperty(t *testing.T) {
	prop := func(keys []string) bool {
		f := MustNewCounting(512, 4)
		for _, k := range keys {
			f.Insert(k)
		}
		for _, k := range keys {
			if !f.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCountingInsertDelete(b *testing.B) {
	f := MustNewCounting(256, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%32)
		f.Insert(key)
		_ = f.Delete(key)
	}
}
