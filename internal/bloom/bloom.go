// Package bloom implements the classic Bloom filter and the Counting Bloom
// filter described in Section III of the B-SUB paper.
//
// A Bloom filter (BF) is a randomized set representation supporting
// probabilistic membership queries: a query for a contained key always
// returns true, while a query for an absent key returns true with the
// false-positive rate of Eq. 1, (1 - e^(-kn/m))^k.
//
// The Counting Bloom filter (CBF) associates a counter with every bit so
// that keys can be deleted; a bit is reset once its counter reaches zero.
//
// In B-SUB, plain BFs are exchanged during message forwarding (a consumer
// reports its interests to a producer or broker as a counter-less BF to save
// bandwidth, Section V-D); the temporal variant used for interest
// propagation lives in package tcbf.
package bloom

import (
	"fmt"
	"math"

	"bsub/internal/hashkit"
)

// Filter is a classic Bloom filter over string keys.
type Filter struct {
	hasher  hashkit.Hasher
	bits    []uint64
	scratch []uint32
}

// NewFilter returns an empty Bloom filter with an m-bit vector and k hash
// functions.
func NewFilter(m, k int) (*Filter, error) {
	hasher, err := hashkit.New(m, k)
	if err != nil {
		return nil, fmt.Errorf("bloom: %w", err)
	}
	return &Filter{
		hasher:  hasher,
		bits:    make([]uint64, (m+63)/64),
		scratch: make([]uint32, 0, k),
	}, nil
}

// MustNewFilter is NewFilter for parameters known to be valid; it panics on
// invalid input.
func MustNewFilter(m, k int) *Filter {
	f, err := NewFilter(m, k)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the bit-vector length.
func (f *Filter) M() int { return f.hasher.M() }

// K returns the number of hash functions.
func (f *Filter) K() int { return f.hasher.K() }

// Insert adds key to the filter.
func (f *Filter) Insert(key string) {
	f.scratch = f.hasher.Positions(f.scratch[:0], key)
	for _, p := range f.scratch {
		f.bits[p/64] |= 1 << (p % 64)
	}
}

// Contains reports whether key may be in the filter. False positives are
// possible; false negatives are not.
func (f *Filter) Contains(key string) bool {
	f.scratch = f.hasher.Positions(f.scratch[:0], key)
	for _, p := range f.scratch {
		if f.bits[p/64]&(1<<(p%64)) == 0 {
			return false
		}
	}
	return true
}

// Merge ORs other into f. The paper: "To merge multiple BFs, we do a
// bit-wise OR on them." Filters must share geometry.
func (f *Filter) Merge(other *Filter) error {
	if f.M() != other.M() || f.K() != other.K() {
		return fmt.Errorf("bloom: geometry mismatch: (%d,%d) vs (%d,%d)",
			f.M(), f.K(), other.M(), other.K())
	}
	for i, w := range other.bits {
		f.bits[i] |= w
	}
	return nil
}

// SetBits returns the number of set bits.
func (f *Filter) SetBits() int {
	n := 0
	for _, w := range f.bits {
		n += popcount(w)
	}
	return n
}

// FillRatio returns the ratio of set bits to vector length (Eq. 3's
// observable counterpart).
func (f *Filter) FillRatio() float64 {
	return float64(f.SetBits()) / float64(f.M())
}

// EstimatedFPR estimates the current false-positive rate from the observed
// fill ratio: a query misses only if all k probed bits are set, so the rate
// is FillRatio^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.K()))
}

// Reset clears the filter to empty.
func (f *Filter) Reset() {
	for i := range f.bits {
		f.bits[i] = 0
	}
}

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	c := &Filter{
		hasher:  f.hasher,
		bits:    make([]uint64, len(f.bits)),
		scratch: make([]uint32, 0, f.K()),
	}
	copy(c.bits, f.bits)
	return c
}

// Bit reports whether bit position p is set. It is used by the wire
// encoders and by tests; p must be in [0, M).
func (f *Filter) Bit(p int) bool {
	return f.bits[p/64]&(1<<(uint(p)%64)) != 0
}

// SetBit sets bit position p. Used by decoders reconstructing a filter from
// its wire form; p must be in [0, M).
func (f *Filter) SetBit(p int) {
	f.bits[p/64] |= 1 << (uint(p) % 64)
}

// OrBits ORs a group of bits into the vector starting at position offset:
// bit i of mask sets position offset+i. The group must not cross a word
// boundary (offset%64 + bits(mask) <= 64) and must stay within [0, M) —
// the word-parallel projection path tcbf.ToBloom uses to transfer four
// lane flags per counter word.
func (f *Filter) OrBits(offset int, mask uint64) {
	f.bits[offset>>6] |= mask << (uint(offset) & 63)
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}
