package bsub_test

import (
	"fmt"
	"time"

	"bsub"
)

// The TCBF's defining behaviour: inserted keys decay away unless
// reinforced.
func ExampleNewTCBF() {
	cfg := bsub.TCBFConfig{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	filter, err := bsub.NewTCBF(cfg, 0)
	if err != nil {
		panic(err)
	}
	if err := filter.Insert("coffee", 0); err != nil {
		panic(err)
	}
	for _, at := range []time.Duration{0, 9 * time.Minute, 11 * time.Minute} {
		ok, err := filter.Contains("coffee", at)
		if err != nil {
			panic(err)
		}
		fmt.Printf("t=%v contains=%v\n", at, ok)
	}
	// Output:
	// t=0s contains=true
	// t=9m0s contains=true
	// t=11m0s contains=false
}

// A-merge reinforces counters; M-merge caps them — the asymmetry that
// prevents bogus counters between brokers (Fig. 6 of the paper).
func ExampleTCBF_AMerge() {
	cfg := bsub.TCBFConfig{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	relay, _ := bsub.NewTCBF(cfg, 0)

	for meeting := 0; meeting < 3; meeting++ {
		genuine, _ := bsub.NewTCBF(cfg, 0)
		if err := genuine.Insert("news", 0); err != nil {
			panic(err)
		}
		if err := relay.AMerge(genuine, 0); err != nil {
			panic(err)
		}
	}
	counter, _ := relay.MinCounter("news", 0)
	fmt.Printf("after 3 meetings the interest counter is %.0f\n", counter)
	// Output:
	// after 3 meetings the interest counter is 30
}

// The preferential query drives broker-to-broker forwarding: positive
// preference means the peer is the better carrier.
func ExamplePreference() {
	cfg := bsub.TCBFConfig{M: 256, K: 4, Initial: 10, DecayPerMinute: 1}
	self, _ := bsub.NewTCBF(cfg, 0)
	peer, _ := bsub.NewTCBF(cfg, 0)

	// The peer broker has seen two consumers interested in "transit";
	// we have seen none.
	for i := 0; i < 2; i++ {
		g, _ := bsub.NewTCBF(cfg, 0)
		if err := g.Insert("transit", 0); err != nil {
			panic(err)
		}
		if err := peer.AMerge(g, 0); err != nil {
			panic(err)
		}
	}
	pref, err := bsub.Preference("transit", peer, self, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("peer preference %.0f: hand the message over\n", pref)
	// Output:
	// peer preference 20: hand the message over
}

// The Eq. 1 false-positive rate at the paper's evaluation geometry.
func ExampleFPR() {
	fmt.Printf("FPR(m=256, k=4, n=38) = %.4f\n", bsub.FPR(256, 4, 38))
	// Output:
	// FPR(m=256, k=4, n=38) = 0.0402
}

// Splitting a key population across several TCBFs under a storage bound
// (Eq. 9-10).
func ExampleOptimalAllocation() {
	alloc, err := bsub.OptimalAllocation(256, 4, 38, 500*8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("filters=%d joint FPR=%.6f\n", alloc.Filters, alloc.JointFPR)
	// Output:
	// filters=38 joint FPR=0.000002
}

// Running a full protocol comparison on a synthetic human network.
func ExampleSimulate() {
	fixture, err := bsub.NewSmallFixture(42)
	if err != nil {
		panic(err)
	}
	report, err := bsub.Simulate(fixture, bsub.NewPull(), 4*time.Hour)
	if err != nil {
		panic(err)
	}
	// PULL forwards exactly once per delivered message instance.
	fmt.Printf("PULL fwd/delivered = %.2f\n", report.ForwardingsPerDelivered())
	// Output:
	// PULL fwd/delivered = 1.00
}
