module bsub

go 1.22
